package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"cimmlc"
	"cimmlc/serving"
)

// pathMetrics summarizes one serving path of the load generator.
type pathMetrics struct {
	WallNS        int64   `json:"wall_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50NS         int64   `json:"p50_ns"`
	P99NS         int64   `json:"p99_ns"`
}

// loadgenResult is the machine-readable load-generator report: the
// sequential per-request baseline versus the dynamic micro-batching queue.
type loadgenResult struct {
	Model             string               `json:"model"`
	Arch              string               `json:"arch"`
	Requests          int                  `json:"requests"`
	Clients           int                  `json:"clients"`
	MaxBatch          int                  `json:"max_batch"`
	Workers           int                  `json:"workers"`
	Baseline          pathMetrics          `json:"baseline"`
	Batched           pathMetrics          `json:"batched"`
	SpeedupX          float64              `json:"speedup_x"`
	BatchedGEBaseline bool                 `json:"batched_ge_baseline"`
	BitIdentical      bool                 `json:"bit_identical"`
	MeanBatch         float64              `json:"mean_batch"`
	BatcherStats      serving.BatcherStats `json:"batcher_stats"`
}

// runLoadgen builds one Program and pushes the same request stream through
// two paths: (a) the sequential per-request baseline — one Program.Run at a
// time, the pre-gateway serving model — and (b) a serving.Batcher fed by
// concurrent clients. It verifies the two paths produce bit-identical
// outputs (and the program against Program.Verify), then reports
// throughput and latency percentiles for both.
func runLoadgen(model, arch string, requests, clients, maxBatch int, jsonOut bool) error {
	if requests < 1 || clients < 1 || maxBatch < 1 {
		return fmt.Errorf("-loadgen-requests, -loadgen-clients and -loadgen-batch must be at least 1")
	}
	ctx := context.Background()
	g, err := cimmlc.Model(model)
	if err != nil {
		return err
	}
	a, err := cimmlc.Preset(arch)
	if err != nil {
		return err
	}
	c, err := cimmlc.New(a)
	if err != nil {
		return err
	}
	w := cimmlc.RandomWeights(g, 1)
	reqs := make([]map[int]*cimmlc.Tensor, requests)
	for i := range reqs {
		in := map[int]*cimmlc.Tensor{}
		for _, id := range g.InputIDs() {
			t := cimmlc.NewTensor(g.MustNode(id).OutShape...)
			t.Rand(uint64(i)*977+uint64(id)+3, 1)
			in[id] = t
		}
		reqs[i] = in
	}
	workers := runtime.GOMAXPROCS(0)
	p, err := c.Build(ctx, g, w, cimmlc.CodegenOptions{},
		cimmlc.WithCalibration(reqs[0]), cimmlc.WithWorkers(workers))
	if err != nil {
		return err
	}
	if err := p.Verify(ctx, reqs[0], 0.05); err != nil {
		return fmt.Errorf("program failed verification: %w", err)
	}
	// Warm both paths (state pool, caches, scheduler) before timing.
	warm := requests
	if warm > 16 {
		warm = 16
	}
	if _, err := p.RunBatch(ctx, reqs[:warm]); err != nil {
		return err
	}

	// A tight deadline keeps batches filling to MaxBatch from the clients'
	// backlog while the partial batch at each round's tail flushes after
	// 200µs instead of stalling a full serving-grade deadline.
	b := serving.NewBatcher(p, serving.BatcherConfig{MaxBatch: maxBatch, MaxDelay: 200 * time.Microsecond})
	baseOuts := make([]map[int]*cimmlc.Tensor, requests)
	batchOuts := make([]map[int]*cimmlc.Tensor, requests)
	baseLat := make([]int64, requests)
	batchLat := make([]int64, requests)
	var baseWall, batchWall time.Duration

	// The two paths run in alternating rounds over the same request stream
	// so bursty host noise hits both measurements evenly instead of
	// whichever path happened to run during the burst; per-path throughput
	// is the median round's, which discards a burst that still lands
	// entirely inside one round. GC runs between rounds, not inside them.
	const rounds = 4
	gcPrev := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPrev)
	baseRounds := make([]float64, 0, rounds)
	batchRounds := make([]float64, 0, rounds)
	for round := 0; round < rounds; round++ {
		lo := round * requests / rounds
		hi := (round + 1) * requests / rounds
		runtime.GC()

		// Path (a): sequential per-request baseline.
		baseStart := time.Now()
		for i := lo; i < hi; i++ {
			t0 := time.Now()
			out, err := p.Run(ctx, reqs[i])
			if err != nil {
				return fmt.Errorf("baseline request %d: %w", i, err)
			}
			baseLat[i] = time.Since(t0).Nanoseconds()
			baseOuts[i] = out
		}
		baseRound := time.Since(baseStart)
		baseWall += baseRound
		if hi > lo {
			baseRounds = append(baseRounds, float64(hi-lo)/baseRound.Seconds())
		}
		runtime.GC()

		// Path (b): dynamic micro-batching queue, concurrent clients.
		var next atomic.Int64
		next.Store(int64(lo))
		var firstErr atomic.Value
		var wg sync.WaitGroup
		batchStart := time.Now()
		for cl := 0; cl < clients; cl++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= hi {
						return
					}
					t0 := time.Now()
					out, err := b.Do(ctx, reqs[i])
					if err != nil {
						firstErr.CompareAndSwap(nil, fmt.Errorf("batched request %d: %w", i, err))
						return
					}
					batchLat[i] = time.Since(t0).Nanoseconds()
					batchOuts[i] = out
				}
			}()
		}
		wg.Wait()
		batchRound := time.Since(batchStart)
		batchWall += batchRound
		if hi > lo {
			batchRounds = append(batchRounds, float64(hi-lo)/batchRound.Seconds())
		}
		if err, ok := firstErr.Load().(error); ok && err != nil {
			return err
		}
	}
	b.Close()

	identical := true
	for i := range reqs {
		if !outputsEqual(baseOuts[i], batchOuts[i]) {
			identical = false
			break
		}
	}
	st := b.Stats()
	res := loadgenResult{
		Model:        g.Name,
		Arch:         a.Name,
		Requests:     requests,
		Clients:      clients,
		MaxBatch:     maxBatch,
		Workers:      workers,
		Baseline:     metricsFor(baseWall, baseLat, baseRounds),
		Batched:      metricsFor(batchWall, batchLat, batchRounds),
		BitIdentical: identical,
		BatcherStats: st,
	}
	res.SpeedupX, _ = pairedMedianSpeedup(baseRounds, batchRounds)
	res.BatchedGEBaseline = res.SpeedupX >= 1
	if st.Batches > 0 {
		res.MeanBatch = float64(st.Requests) / float64(st.Batches)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		fmt.Printf("loadgen: %s on %s, %d requests, %d clients, batch %d, %d workers\n",
			res.Model, res.Arch, requests, clients, maxBatch, workers)
		fmt.Printf("  baseline (sequential Run): %8.0f req/s  p50 %6.2fms  p99 %6.2fms\n",
			res.Baseline.ThroughputRPS, float64(res.Baseline.P50NS)/1e6, float64(res.Baseline.P99NS)/1e6)
		fmt.Printf("  micro-batched (queue):     %8.0f req/s  p50 %6.2fms  p99 %6.2fms\n",
			res.Batched.ThroughputRPS, float64(res.Batched.P50NS)/1e6, float64(res.Batched.P99NS)/1e6)
		fmt.Printf("  speedup %.2fx, mean batch %.1f, bit-identical %v\n", res.SpeedupX, res.MeanBatch, res.BitIdentical)
	}
	if !identical {
		return fmt.Errorf("micro-batched outputs diverge from the per-request baseline")
	}
	return nil
}

func outputsEqual(a, b map[int]*cimmlc.Tensor) bool {
	if len(a) != len(b) {
		return false
	}
	for id, ta := range a {
		tb, ok := b[id]
		if !ok {
			return false
		}
		da, db := ta.Data(), tb.Data()
		if len(da) != len(db) {
			return false
		}
		for i := range da {
			if da[i] != db[i] {
				return false
			}
		}
	}
	return true
}
