package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"cimmlc"
)

// batchSweepSizes are the micro-batch sizes the sweep measures. Batch 1 is
// the per-request baseline; the CI gate compares batch 16 against it.
var batchSweepSizes = []int{1, 4, 16, 64}

// batchPoint is one batch size's measurement.
type batchPoint struct {
	Batch           int     `json:"batch"`
	Requests        int     `json:"requests"`
	WallNS          int64   `json:"wall_ns"`
	NSPerRequest    float64 `json:"ns_per_request"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	BatchedRequests uint64  `json:"batched_requests"`
	SpeedupX        float64 `json:"speedup_x"`
}

// batchSweepResult is the machine-readable sweep report (the CI artifact).
type batchSweepResult struct {
	Model             string       `json:"model"`
	Arch              string       `json:"arch"`
	RequestsPerPoint  int          `json:"requests_per_point"`
	Points            []batchPoint `json:"points"`
	BitIdentical      bool         `json:"bit_identical"`
	Batch16GEBaseline bool         `json:"batch16_ge_baseline"`
}

// runBatchSweep measures serving throughput as a function of micro-batch
// size: the same request stream is pushed through Program.RunBatch at batch
// sizes {1, 4, 16, 64} and each point reports its per-request cost. The
// program is built with a single worker so a batch of size b forms exactly
// one micro-batch on the compiled kernels — the sweep isolates the batched
// execution win (one pass over each crossbar's reconstructed-weight cache
// serving all lanes) from worker-pool parallelism. Every batched output is
// compared bit-for-bit against a per-request Run, and the run fails if
// batch-16 throughput falls below the per-request baseline.
func runBatchSweep(model, arch string, total int, jsonOut bool) error {
	maxBatch := batchSweepSizes[len(batchSweepSizes)-1]
	if total < maxBatch {
		return fmt.Errorf("-batchsweep-requests must be at least %d", maxBatch)
	}
	ctx := context.Background()
	g, err := cimmlc.Model(model)
	if err != nil {
		return err
	}
	a, err := cimmlc.Preset(arch)
	if err != nil {
		return err
	}
	c, err := cimmlc.New(a)
	if err != nil {
		return err
	}
	w := cimmlc.RandomWeights(g, 1)
	reqs := make([]map[int]*cimmlc.Tensor, maxBatch)
	for i := range reqs {
		in := map[int]*cimmlc.Tensor{}
		for _, id := range g.InputIDs() {
			t := cimmlc.NewTensor(g.MustNode(id).OutShape...)
			t.Rand(uint64(i)*977+uint64(id)+3, 1)
			in[id] = t
		}
		reqs[i] = in
	}
	p, err := c.Build(ctx, g, w, cimmlc.CodegenOptions{},
		cimmlc.WithCalibration(reqs[0]), cimmlc.WithWorkers(1))
	if err != nil {
		return err
	}
	if err := p.Verify(ctx, reqs[0], 0.05); err != nil {
		return fmt.Errorf("program failed verification: %w", err)
	}

	// Per-request references for the bit-identity check.
	refs := make([]map[int]*cimmlc.Tensor, maxBatch)
	for i, req := range reqs {
		out, err := p.Run(ctx, req)
		if err != nil {
			return fmt.Errorf("reference request %d: %w", i, err)
		}
		refs[i] = out
	}

	res := batchSweepResult{
		Model:            g.Name,
		Arch:             a.Name,
		RequestsPerPoint: total,
		BitIdentical:     true,
	}
	gcPrev := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPrev)

	// Warm every point (state pools, kernel caches) and check bit-identity
	// off the clock.
	for _, b := range batchSweepSizes {
		outs, err := p.RunBatch(ctx, reqs[:b])
		if err != nil {
			return fmt.Errorf("batch %d: %w", b, err)
		}
		for i := range outs {
			if !outputsEqual(outs[i], refs[i]) {
				res.BitIdentical = false
			}
		}
	}

	// Rounds are interleaved across batch sizes and each size keeps its best
	// round, so scheduler noise on a shared runner (CPU steal hitting one
	// multi-second stretch) cannot penalize a single point.
	const rounds = 5
	best := make([]time.Duration, len(batchSweepSizes))
	served := make([]int, len(batchSweepSizes))
	batchedPerRound := make([]uint64, len(batchSweepSizes))
	for r := 0; r < rounds; r++ {
		for bi, b := range batchSweepSizes {
			batch := reqs[:b]
			iters := total / b
			before := p.Stats()
			runtime.GC()
			start := time.Now()
			for it := 0; it < iters; it++ {
				if _, err := p.RunBatch(ctx, batch); err != nil {
					return fmt.Errorf("batch %d: %w", b, err)
				}
			}
			wall := time.Since(start)
			if r == 0 || wall < best[bi] {
				best[bi] = wall
			}
			served[bi] = iters * b
			batchedPerRound[bi] = p.Stats().BatchedRequests - before.BatchedRequests
		}
	}

	var baselineNS float64
	for bi, b := range batchSweepSizes {
		wall := best[bi]
		pt := batchPoint{
			Batch:           b,
			Requests:        served[bi],
			WallNS:          wall.Nanoseconds(),
			NSPerRequest:    float64(wall.Nanoseconds()) / float64(served[bi]),
			ThroughputRPS:   float64(served[bi]) / wall.Seconds(),
			BatchedRequests: batchedPerRound[bi],
		}
		if b == 1 {
			baselineNS = pt.NSPerRequest
		}
		if baselineNS > 0 {
			pt.SpeedupX = baselineNS / pt.NSPerRequest
		}
		res.Points = append(res.Points, pt)
		if b == 16 {
			res.Batch16GEBaseline = pt.NSPerRequest <= baselineNS
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		fmt.Printf("batch sweep: %s on %s, %d requests per point, single worker\n",
			res.Model, res.Arch, total)
		for _, pt := range res.Points {
			fmt.Printf("  batch %3d: %9.0f req/s  %8.0f ns/request  speedup %5.2fx  (batched %d req/round)\n",
				pt.Batch, pt.ThroughputRPS, pt.NSPerRequest, pt.SpeedupX, pt.BatchedRequests)
		}
	}
	if !res.BitIdentical {
		return fmt.Errorf("batched outputs diverge from the per-request baseline")
	}
	if !res.Batch16GEBaseline {
		return fmt.Errorf("batch-16 throughput regressed below the per-request baseline")
	}
	return nil
}
