package main

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"cimmlc"
)

// TestSweepZooVisitsEveryCellPastFailures pins the fix for the silent
// mid-sweep abort: a failing cell (including one whose model does not load)
// must not stop the sweep, and the summary must list every cell with its
// outcome and count the failures.
func TestSweepZooVisitsEveryCellPastFailures(t *testing.T) {
	cells := []zooCell{
		{Model: "a", Arch: "x", Level: cimmlc.CM},
		{Model: "b", Arch: "x", Level: cimmlc.CM},
		{Model: "c", Arch: "x", Level: cimmlc.CM},
	}
	var visited []string
	outcomes := sweepZoo(io.Discard, cells, func(c zooCell) error {
		visited = append(visited, c.Model)
		if c.Model == "b" {
			return errors.New("boom\nwith detail")
		}
		return nil
	})
	if got := strings.Join(visited, ","); got != "a,b,c" {
		t.Fatalf("sweep visited %q, want every cell in order", got)
	}
	if len(outcomes) != 3 || outcomes[1].Err == nil || outcomes[0].Err != nil || outcomes[2].Err != nil {
		t.Fatalf("outcomes = %+v, want only the middle cell failed", outcomes)
	}

	var sum bytes.Buffer
	if bad := summarizeSweep(&sum, "test sweep", outcomes); bad != 1 {
		t.Fatalf("summarizeSweep = %d failures, want 1", bad)
	}
	out := sum.String()
	for _, needle := range []string{"1 of 3 cells failed", "a|x|CM", "b|x|CM", "c|x|CM", "FAIL: boom ..."} {
		if !strings.Contains(out, needle) {
			t.Errorf("summary %q should contain %q", out, needle)
		}
	}
	if strings.Contains(out, "with detail") {
		t.Errorf("summary %q should truncate multi-line errors to one row", out)
	}
}

// TestVetZooCellLoadFailureIsPerCell proves an unloadable model or arch
// becomes that cell's outcome (so the sweep reports it and moves on) rather
// than an early exit, and that healthy cells still verify.
func TestVetZooCellLoadFailureIsPerCell(t *testing.T) {
	cells := []zooCell{
		{Model: "no-such-model", Arch: "toy-table2", Level: cimmlc.XBM},
		{Model: "conv-relu", Arch: "no-such-arch", Level: cimmlc.XBM},
		{Model: "conv-relu", Arch: "toy-table2", Level: cimmlc.XBM},
	}
	outcomes := sweepZoo(io.Discard, cells, vetZooCell)
	if len(outcomes) != 3 {
		t.Fatalf("sweep stopped early: %d outcomes, want 3", len(outcomes))
	}
	if outcomes[0].Err == nil || outcomes[1].Err == nil {
		t.Fatalf("load failures not recorded: %+v", outcomes[:2])
	}
	if outcomes[2].Err != nil {
		t.Fatalf("healthy cell failed: %v", outcomes[2].Err)
	}
}

// TestSummarizeSweepAlignsLongCellNames pins the fix for the summary table's
// fixed 40-column cell field: a cell key longer than the old width must not
// push its result out of alignment — every result column starts at the same
// offset, one past the longest key.
func TestSummarizeSweepAlignsLongCellNames(t *testing.T) {
	long := zooCell{Model: "a-very-long-experimental-model-name", Arch: "isaac-baseline-2xcores", Level: cimmlc.XBM}
	outcomes := []sweepOutcome{
		{Cell: zooCell{Model: "mlp", Arch: "puma", Level: cimmlc.CM}},
		{Cell: long, Err: errors.New("boom")},
	}
	var sum bytes.Buffer
	if bad := summarizeSweep(&sum, "test sweep", outcomes); bad != 1 {
		t.Fatalf("summarizeSweep = %d failures, want 1", bad)
	}
	lines := strings.Split(strings.TrimRight(sum.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("summary has %d lines, want 4:\n%s", len(lines), sum.String())
	}
	want := len(long.Key()) + 1
	checks := map[string]string{lines[1]: "result", lines[2]: "ok", lines[3]: "FAIL: boom"}
	for line, result := range checks {
		if idx := strings.Index(line, result); idx != want {
			t.Errorf("line %q: result column at %d, want %d", line, idx, want)
		}
	}
}

// TestSummarizeSweepAllOK keeps the happy path quiet: one line, zero exit.
func TestSummarizeSweepAllOK(t *testing.T) {
	var sum bytes.Buffer
	outcomes := []sweepOutcome{{Cell: zooCell{Model: "m", Arch: "a", Level: cimmlc.CM}}}
	if bad := summarizeSweep(&sum, "test sweep", outcomes); bad != 0 {
		t.Fatalf("summarizeSweep = %d, want 0", bad)
	}
	if got := sum.String(); got != "test sweep: all 1 cells ok\n" {
		t.Fatalf("summary = %q", got)
	}
}

// TestShortZooCellsPolicy pins the sweep matrix shape: 45 cells, exec models
// uncapped, large models window-capped so the sweep (and the analyze golden)
// stays fast.
func TestShortZooCellsPolicy(t *testing.T) {
	cells := shortZooCells()
	if len(cells) != 45 {
		t.Fatalf("short zoo has %d cells, want 45", len(cells))
	}
	caps := map[string]int64{}
	for _, c := range cells {
		caps[c.Model] = c.WinCap
	}
	for _, m := range []string{"conv-relu", "mlp", "lenet5"} {
		if caps[m] != 0 {
			t.Errorf("exec model %s capped at %d windows, want full emission", m, caps[m])
		}
	}
	for _, m := range []string{"vgg7", "vit-tiny"} {
		if caps[m] == 0 {
			t.Errorf("large model %s uncapped; the sweep would take minutes", m)
		}
	}
}
