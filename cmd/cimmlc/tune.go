package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"cimmlc"
)

// runTune is the `cimmlc tune` subcommand: it compiles a model twice — once
// with the multi-level heuristics alone and once with the schedule autotuner
// on top — and reports the heuristic-vs-tuned latency, the budget spent and
// the accepted move chain.
func runTune(args []string) {
	fs := flag.NewFlagSet("cimmlc tune", flag.ExitOnError)
	var (
		modelName  = fs.String("model", "", "zoo model name")
		modelFile  = fs.String("model-file", "", "graph JSON file (alternative to -model)")
		archName   = fs.String("arch", "", "preset architecture name")
		archFile   = fs.String("arch-file", "", "architecture JSON file (alternative to -arch)")
		maxLevel   = fs.String("max-level", "", "cap optimization level (CM, XBM or WLM)")
		candidates = fs.Int("budget", 0, "max candidate schedules to score (0 = default)")
		beam       = fs.Int("beam", 0, "beam width of the search (0 = default)")
		rounds     = fs.Int("rounds", 0, "max search rounds (0 = default)")
		workers    = fs.Int("workers", 0, "concurrent candidate scorers (0 = GOMAXPROCS; never changes the result)")
	)
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	g, err := loadModel(*modelName, *modelFile)
	if err != nil {
		fatal(err)
	}
	a, err := loadArch(*archName, *archFile)
	if err != nil {
		fatal(err)
	}
	var base []cimmlc.Option
	if *maxLevel != "" {
		base = append(base, cimmlc.WithMaxLevel(cimmlc.Mode(strings.ToUpper(*maxLevel))))
	}
	budget := cimmlc.Budget{MaxCandidates: *candidates, Beam: *beam, MaxRounds: *rounds, Workers: *workers}

	hc, err := cimmlc.New(a, base...)
	if err != nil {
		fatal(err)
	}
	hres, err := hc.Compile(ctx, g)
	if err != nil {
		fatal(err)
	}
	tc, err := cimmlc.New(a, append(append([]cimmlc.Option{}, base...), cimmlc.WithAutoTune(budget))...)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	tres, err := tc.Compile(ctx, g)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	st := tres.Tuning
	fmt.Printf("model:        %s on %s\n", g.Name, a)
	fmt.Printf("heuristic:    %.0f cycles (levels %v)\n", hres.Report.Cycles, hres.Schedule.Levels)
	fmt.Printf("tuned:        %.0f cycles (%.3fx speedup)\n", st.TunedCycles, st.Speedup())
	fmt.Printf("search:       %d candidates scored over %d rounds in %v\n", st.Evaluated, st.Rounds, wall.Round(time.Millisecond))
	fmt.Printf("fingerprint:  %s\n", st.ScheduleFingerprint)
	if len(st.Moves) == 0 {
		fmt.Println("moves:        none (the heuristic schedule was already best found)")
	} else {
		fmt.Println("moves:")
		for _, m := range st.Moves {
			fmt.Printf("  %s\n", m)
		}
	}
}
