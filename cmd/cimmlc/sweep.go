package main

import (
	"fmt"
	"io"

	"cimmlc"
	"cimmlc/internal/conformance"
)

// zooCell is one (model, arch, level) point of the short conformance matrix
// as the CLI sweeps visit it. WinCap caps window emission for models whose
// full flows are too large to materialize on every sweep (0 = emit all).
type zooCell struct {
	Model  string
	Arch   string
	Level  cimmlc.Mode
	WinCap int64
}

// Key matches the conformance/golden "model|arch|level" convention.
func (c zooCell) Key() string { return c.Model + "|" + c.Arch + "|" + string(c.Level) }

// shortZooCells enumerates the short conformance matrix in deterministic
// order: the exec models lower their complete flows, the rest cap window
// emission so the sweep stays fast.
func shortZooCells() []zooCell {
	cfg := conformance.ShortConfig()
	full := map[string]bool{}
	for _, m := range cfg.ExecModels {
		full[m] = true
	}
	var cells []zooCell
	for _, model := range cfg.Models {
		for _, archName := range cfg.Archs {
			for _, level := range cfg.Levels {
				var winCap int64 = 2
				if full[model] {
					winCap = 0
				}
				cells = append(cells, zooCell{Model: model, Arch: archName, Level: level, WinCap: winCap})
			}
		}
	}
	return cells
}

// sweepOutcome records one visited cell; Err nil means the cell passed.
type sweepOutcome struct {
	Cell zooCell
	Err  error
}

// sweepZoo runs fn over every cell, never aborting mid-sweep: any failure —
// including a model or arch that fails to load inside fn — is recorded and
// the sweep moves on, so one broken cell cannot hide the state of the rest
// of the matrix. Progress streams to w as each cell completes; the caller
// renders the final summary from the returned outcomes.
func sweepZoo(w io.Writer, cells []zooCell, fn func(zooCell) error) []sweepOutcome {
	outcomes := make([]sweepOutcome, 0, len(cells))
	for _, cell := range cells {
		err := fn(cell)
		outcomes = append(outcomes, sweepOutcome{Cell: cell, Err: err})
		if err != nil {
			fmt.Fprintf(w, "FAIL %s: %v\n", cell.Key(), err)
		} else {
			fmt.Fprintf(w, "ok   %s\n", cell.Key())
		}
	}
	return outcomes
}

// summarizeSweep prints the per-cell summary table and returns the number of
// failed cells.
func summarizeSweep(w io.Writer, verb string, outcomes []sweepOutcome) int {
	bad := 0
	for _, o := range outcomes {
		if o.Err != nil {
			bad++
		}
	}
	if bad == 0 {
		fmt.Fprintf(w, "%s: all %d cells ok\n", verb, len(outcomes))
		return 0
	}
	fmt.Fprintf(w, "%s: %d of %d cells failed\n", verb, bad, len(outcomes))
	// Size the cell column to the longest key so long model or arch names
	// cannot push the result column out of alignment.
	width := len("cell")
	for _, o := range outcomes {
		if n := len(o.Cell.Key()); n > width {
			width = n
		}
	}
	fmt.Fprintf(w, "%-*s %s\n", width, "cell", "result")
	for _, o := range outcomes {
		result := "ok"
		if o.Err != nil {
			result = "FAIL: " + firstLine(o.Err.Error())
		}
		fmt.Fprintf(w, "%-*s %s\n", width, o.Cell.Key(), result)
	}
	return bad
}

// firstLine truncates a (possibly multi-line) error message to its first
// line so the summary table stays one row per cell.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i] + " ..."
		}
	}
	return s
}
