package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"cimmlc"
	"cimmlc/internal/irverify"
)

// runVet implements `cimmlc vet`: compile with the static IR verifier forced
// on and report rule-named diagnostics instead of wrong numbers.
//
//	cimmlc vet lenet5 puma            verify one model × arch cell
//	cimmlc vet -zoo                   verify the short conformance matrix
//	cimmlc vet -selftest              prove seeded corruptions still get caught
func runVet(args []string) {
	fs := flag.NewFlagSet("vet", flag.ExitOnError)
	var (
		modelFile = fs.String("model-file", "", "graph JSON file instead of a zoo model name")
		archFile  = fs.String("arch-file", "", "architecture JSON file instead of a preset name")
		maxLevel  = fs.String("max-level", "", "cap optimization level (CM, XBM or WLM)")
		zoo       = fs.Bool("zoo", false, "verify every cell of the short conformance matrix")
		selftest  = fs.Bool("selftest", false, "run the seeded-corruption fixtures; each must be rejected with its rule")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cimmlc vet <model> <arch> | cimmlc vet -zoo | cimmlc vet -selftest")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	switch {
	case *selftest:
		os.Exit(vetSelftest())
	case *zoo:
		os.Exit(vetZoo())
	default:
		rest := fs.Args()
		var modelName, archName string
		if len(rest) == 2 {
			modelName, archName = rest[0], rest[1]
		} else if len(rest) != 0 || (*modelFile == "" && *archFile == "") {
			fs.Usage()
			os.Exit(2)
		}
		g, err := loadModel(modelName, *modelFile)
		if err != nil {
			fatal(err)
		}
		a, err := loadArch(archName, *archFile)
		if err != nil {
			fatal(err)
		}
		var level cimmlc.Mode
		if *maxLevel != "" {
			level = cimmlc.Mode(*maxLevel)
			if !level.Valid() {
				fatal(fmt.Errorf("cimmlc: invalid -max-level %q", *maxLevel))
			}
		}
		if err := vetCell(g, a, level, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("ok   %s × %s: graph, schedule, mapping and flow verified\n", g.Name, a)
	}
}

// vetCell compiles one model × arch at the given level cap (empty = native)
// with verification after every pass, then lowers and verifies the flow.
// maxWindows caps emission for large models; a capped (truncated) flow still
// gets its structural checks.
func vetCell(g *cimmlc.Graph, a *cimmlc.Arch, level cimmlc.Mode, maxWindows int64) error {
	opts := []cimmlc.Option{cimmlc.WithVerifyIR(), cimmlc.WithCache(0)}
	if level != "" {
		opts = append(opts, cimmlc.WithMaxLevel(level))
	}
	c, err := cimmlc.New(a, opts...)
	if err != nil {
		return err
	}
	ctx := context.Background()
	res, err := c.Compile(ctx, g)
	if err != nil {
		return err
	}
	_, err = c.Lower(ctx, g, res, cimmlc.CodegenOptions{MaxWindowsPerOp: maxWindows})
	return err
}

// vetZoo sweeps the short conformance matrix. The cheap exec models lower
// their full flows; the rest cap window emission so the sweep stays fast. A
// failing cell — including one whose model or arch does not load — never
// aborts the sweep: every cell is visited and the summary table reports all
// of them.
func vetZoo() int {
	outcomes := sweepZoo(os.Stdout, shortZooCells(), vetZooCell)
	if bad := summarizeSweep(os.Stderr, "cimmlc vet -zoo", outcomes); bad > 0 {
		return 1
	}
	return 0
}

// vetZooCell loads and verifies one cell; load failures are per-cell
// outcomes, not sweep aborts.
func vetZooCell(cell zooCell) error {
	g, err := cimmlc.Model(cell.Model)
	if err != nil {
		return err
	}
	a, err := cimmlc.Preset(cell.Arch)
	if err != nil {
		return err
	}
	return vetCell(g, a, cell.Level, cell.WinCap)
}

// vetSelftest runs every seeded corruption through the verifier; each must
// be rejected with its named rule, proving the rules still bite in this
// build, not just in the repo's test suite.
func vetSelftest() int {
	bad := 0
	for _, fx := range irverify.Fixtures() {
		vs, err := fx.Check()
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "FAIL %-24s fixture broke: %v\n", fx.Name, err)
			bad++
		case !irverify.HasRule(vs, fx.Rule):
			fmt.Fprintf(os.Stderr, "FAIL %-24s not rejected with rule %s (got %v)\n", fx.Name, fx.Rule, vs)
			bad++
		default:
			fmt.Printf("ok   %-24s rejected with %s\n", fx.Name, fx.Rule)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "cimmlc vet -selftest: %d fixture(s) escaped\n", bad)
		return 1
	}
	return 0
}
