package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cimmlc"
	"cimmlc/internal/flowdata"
)

// runAnalyze implements `cimmlc analyze`: lower one cell (or the short zoo)
// and emit the static dataflow resource report — MOP counts by class and
// mnemonic, transfer volume, layout and scratch footprint, liveness peaks
// and the live-range pressure histogram — as text or stable JSON.
//
//	cimmlc analyze -model mlp -arch puma              one cell, text report
//	cimmlc analyze -model mlp -arch puma -json        same, golden-format JSON
//	cimmlc analyze -zoo -json                         every short-zoo cell
//	cimmlc analyze -zoo -golden testdata/analyze_golden.json          CI diff
//	cimmlc analyze -zoo -golden testdata/analyze_golden.json -update  refresh
func runAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	var (
		modelName = fs.String("model", "", "zoo model name (see -list)")
		modelFile = fs.String("model-file", "", "graph JSON file (alternative to -model)")
		archName  = fs.String("arch", "", "preset architecture name")
		archFile  = fs.String("arch-file", "", "architecture JSON file (alternative to -arch)")
		maxLevel  = fs.String("max-level", "", "cap optimization level (CM, XBM or WLM)")
		flowOpt   = fs.Bool("flowopt", false, "analyze the flow after the WithFlowOpt rewrite")
		maxWin    = fs.Int64("max-windows", 0, "cap emitted window blocks per operator (0 = all; capped flows get a counts-only report)")
		asJSON    = fs.Bool("json", false, "emit the report as stable JSON instead of text")
		zoo       = fs.Bool("zoo", false, "analyze every cell of the short conformance matrix")
		golden    = fs.String("golden", "", "with -zoo: committed golden file to diff the reports against")
		update    = fs.Bool("update", false, "with -zoo -golden: merge this run's reports into the golden file instead of diffing")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cimmlc analyze -model <m> -arch <a> [-json] | cimmlc analyze -zoo [-json] [-golden file [-update]]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	ctx, stop := signalContext()
	defer stop()

	if *zoo {
		os.Exit(analyzeZoo(ctx, *asJSON, *golden, *update))
	}

	g, err := loadModel(*modelName, *modelFile)
	if err != nil {
		fatal(err)
	}
	a, err := loadArch(*archName, *archFile)
	if err != nil {
		fatal(err)
	}
	var level cimmlc.Mode
	if *maxLevel != "" {
		level = cimmlc.Mode(strings.ToUpper(*maxLevel))
		if !level.Valid() {
			fatal(fmt.Errorf("cimmlc: invalid -max-level %q", *maxLevel))
		}
	}
	rep, err := analyzeCell(ctx, g, a, level, *maxWin, *flowOpt)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		printJSON(map[string]*cimmlc.FlowReport{flowdata.ReportKey(rep.Model, rep.Arch, rep.Level): rep})
		return
	}
	printAnalyzeText(rep)
}

// analyzeCell compiles and lowers one cell with verification on, then runs
// the dataflow analysis and returns the report.
func analyzeCell(ctx context.Context, g *cimmlc.Graph, a *cimmlc.Arch, level cimmlc.Mode, maxWindows int64, flowOpt bool) (*cimmlc.FlowReport, error) {
	// Host fallback is on so mixed models analyze too; fully supported
	// models compile monolithically either way, keeping goldens unchanged.
	opts := []cimmlc.Option{cimmlc.WithVerifyIR(), cimmlc.WithCache(0), cimmlc.WithHostFallback()}
	if level != "" {
		opts = append(opts, cimmlc.WithMaxLevel(level))
	}
	if flowOpt {
		opts = append(opts, cimmlc.WithFlowOpt())
	}
	c, err := cimmlc.New(a, opts...)
	if err != nil {
		return nil, err
	}
	res, err := c.Compile(ctx, g)
	if err != nil {
		return nil, err
	}
	return c.Analyze(ctx, g, res, cimmlc.CodegenOptions{MaxWindowsPerOp: maxWindows})
}

// analyzeZoo sweeps the short conformance matrix, optionally diffing against
// (or refreshing) the committed golden file. Like vet -zoo, a failing cell
// never aborts the sweep.
func analyzeZoo(ctx context.Context, asJSON bool, goldenPath string, update bool) int {
	reports := map[string]cimmlc.FlowReport{}
	outcomes := sweepZoo(os.Stderr, shortZooCells(), func(cell zooCell) error {
		g, err := cimmlc.Model(cell.Model)
		if err != nil {
			return err
		}
		a, err := cimmlc.Preset(cell.Arch)
		if err != nil {
			return err
		}
		rep, err := analyzeCell(ctx, g, a, cell.Level, cell.WinCap, false)
		if err != nil {
			return err
		}
		reports[cell.Key()] = *rep
		return nil
	})
	bad := summarizeSweep(os.Stderr, "cimmlc analyze -zoo", outcomes)

	switch {
	case goldenPath != "" && update:
		if bad > 0 {
			fmt.Fprintln(os.Stderr, "cimmlc analyze: refusing to -update goldens from a failing sweep")
			return 1
		}
		existing, err := flowdata.LoadReportGolden(goldenPath)
		if err != nil {
			fatal(err)
		}
		if err := flowdata.SaveReportGolden(goldenPath, flowdata.MergeReportGolden(existing, reports)); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cimmlc analyze: wrote %d reports to %s\n", len(reports), goldenPath)
	case goldenPath != "":
		want, err := flowdata.LoadReportGolden(goldenPath)
		if err != nil {
			fatal(err)
		}
		bad += diffAgainstGolden(reports, want, outcomes)
	}

	if asJSON {
		printJSON(reports)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// diffAgainstGolden compares this sweep's reports against the committed map
// and prints field-level drift; cells that failed to analyze are skipped
// (their failure is already counted). Returns the number of drifted or
// missing cells.
func diffAgainstGolden(got map[string]cimmlc.FlowReport, want map[string]cimmlc.FlowReport, outcomes []sweepOutcome) int {
	bad := 0
	for _, o := range outcomes {
		if o.Err != nil {
			continue
		}
		key := o.Cell.Key()
		g, ok := got[key]
		if !ok {
			continue
		}
		w, ok := want[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "DRIFT %s: no golden entry (regenerate with `cimmlc analyze -zoo -golden <file> -update`)\n", key)
			bad++
			continue
		}
		diffs := flowdata.DiffReports(g, w)
		if len(diffs) > 0 {
			bad++
			for _, d := range diffs {
				fmt.Fprintf(os.Stderr, "DRIFT %s: %s\n", key, d)
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "cimmlc analyze: %d cell(s) drifted from %s\n", bad, "golden")
	}
	return bad
}

// printJSON writes stable JSON to stdout.
func printJSON(v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(append(data, '\n'))
}

// printAnalyzeText renders one report for humans.
func printAnalyzeText(r *cimmlc.FlowReport) {
	fmt.Printf("cell:            %s × %s @ %s\n", r.Model, r.Arch, r.Level)
	if r.Truncated {
		fmt.Println("note:            window emission capped; counts-only report (liveness facts need the full flow)")
	}
	fmt.Printf("mops:            %d total (cim %d, dcom %d, dmov %d, parallel %d)\n",
		r.MOPs.Total, r.MOPs.CIM, r.MOPs.DCOM, r.MOPs.DMOV, r.MOPs.Parallel)
	fmt.Println("op counts:")
	for _, oc := range r.OpCounts {
		fmt.Printf("  %-14s %d\n", oc.Op, oc.Count)
	}
	fmt.Printf("transfer words:  %d\n", r.TransferWords)
	fmt.Printf("layout words:    %d (scratch %d)\n", r.LayoutWords, r.ScratchWords)
	if !r.Truncated {
		fmt.Printf("peak live:       %d scratch words, %d regions, %d crossbars\n",
			r.PeakLiveScratchWords, r.PeakLiveRegions, r.PeakLiveCrossbars)
		fmt.Printf("dead mops:       %d   redundant transfers: %d\n", r.DeadMOPs, r.RedundantTransfers)
		fmt.Println("live-range pressure (instrs at N live regions):")
		for _, b := range r.Pressure {
			fmt.Printf("  %-6s %d\n", b.Bucket, b.Instrs)
		}
	}
	if p := r.Partition; p != nil {
		fmt.Printf("partition:       %d subgraphs (%d cim nodes, %d host nodes)\n",
			p.Subgraphs, p.CIMNodes, p.HostNodes)
		fmt.Printf("  transfers:     %d cut edges, %d elements over the host link\n",
			p.Transfers, p.TransferElems)
		fmt.Printf("  host ops:      %d\n", p.HostOps)
		fmt.Printf("  cycles:        cim %.0f + host %.0f + transfer %.0f = %.0f\n",
			p.CIMCycles, p.HostCycles, p.TransferCycles, p.CIMCycles+p.HostCycles+p.TransferCycles)
	}
}
