// Command cimmlc is the CLI compiler: it compiles a zoo model (or a graph
// JSON file) onto a preset architecture (or an architecture JSON file) and
// prints the schedule report and, optionally, the meta-operator flow.
//
// The run subcommand compiles once into an executable Program and serves a
// stream of inference requests against it on the functional simulator. The
// tune subcommand runs the schedule autotuner and reports the tuned-vs-
// heuristic latency and the accepted moves.
//
// Usage:
//
//	cimmlc -model resnet18 -arch isaac-baseline
//	cimmlc -model conv-relu -arch toy-table2 -flow -max-windows 2
//	cimmlc -model-file net.json -arch-file accel.json -report
//	cimmlc -list
//	cimmlc run -model conv-relu -arch toy-table2 -requests 64 -parallel 8
//	cimmlc tune -model vgg7 -arch puma -budget 256
//	cimmlc vet lenet5 puma
//	cimmlc vet -zoo
//	cimmlc vet -selftest
//	cimmlc analyze -model mlp -arch puma -json
//	cimmlc analyze -zoo -golden testdata/analyze_golden.json
//
// The vet subcommand compiles with the static IR verifier (internal/
// irverify) forced on and reports rule-named diagnostics; -selftest proves
// the rules still reject the seeded-corruption fixtures in this build. The
// analyze subcommand emits the static dataflow resource report (see
// internal/flowdata) per cell, with a golden diff/update flow for CI.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"time"

	"cimmlc"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "run" {
		runServe(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "tune" {
		runTune(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		runVet(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		runAnalyze(os.Args[2:])
		return
	}
	compileMain()
}

// signalContext is the CLI-wide interruptible context.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

func compileMain() {
	var (
		modelName = flag.String("model", "", "zoo model name (see -list)")
		modelFile = flag.String("model-file", "", "graph JSON file (alternative to -model)")
		archName  = flag.String("arch", "", "preset architecture name (see -list)")
		archFile  = flag.String("arch-file", "", "architecture JSON file (alternative to -arch)")
		maxLevel  = flag.String("max-level", "", "cap optimization level (CM, XBM or WLM)")
		noPipe    = flag.Bool("no-pipeline", false, "disable inter-operator pipelining")
		noDup     = flag.Bool("no-duplication", false, "disable operator duplication")
		noStagger = flag.Bool("no-stagger", false, "disable the staggered MVM pipeline")
		noRemap   = flag.Bool("no-remap", false, "disable wordline remapping")
		emitFlow  = flag.Bool("flow", false, "print the generated meta-operator flow")
		maxWin    = flag.Int64("max-windows", 0, "cap emitted window blocks per operator (0 = all)")
		list      = flag.Bool("list", false, "list models and architectures, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("models:")
		for _, n := range cimmlc.ModelNames() {
			fmt.Println("  " + n)
		}
		fmt.Println("architectures:")
		for _, n := range cimmlc.Presets() {
			fmt.Println("  " + n)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	g, err := loadModel(*modelName, *modelFile)
	if err != nil {
		fatal(err)
	}
	a, err := loadArch(*archName, *archFile)
	if err != nil {
		fatal(err)
	}
	var opts []cimmlc.Option
	if *noPipe {
		opts = append(opts, cimmlc.WithoutPipeline())
	}
	if *noDup {
		opts = append(opts, cimmlc.WithoutDuplication())
	}
	if *noStagger {
		opts = append(opts, cimmlc.WithoutStagger())
	}
	if *noRemap {
		opts = append(opts, cimmlc.WithoutRemap())
	}
	if *maxLevel != "" {
		opts = append(opts, cimmlc.WithMaxLevel(cimmlc.Mode(strings.ToUpper(*maxLevel))))
	}
	c, err := cimmlc.New(a, opts...)
	if err != nil {
		fatal(err)
	}
	res, err := c.Compile(ctx, g)
	if err != nil {
		fatal(err)
	}
	printReport(g, a, res)
	if *emitFlow {
		fr, err := c.Lower(ctx, g, res, cimmlc.CodegenOptions{MaxWindowsPerOp: *maxWin})
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(fr.Flow.Print())
		if fr.Truncated {
			fmt.Println("# (window loops truncated by -max-windows; rerun with 0 for the executable flow)")
		}
	}
}

// runServe is the `cimmlc run` subcommand: Build once, then serve -requests
// random inferences across -parallel workers and report throughput.
func runServe(args []string) {
	fs := flag.NewFlagSet("cimmlc run", flag.ExitOnError)
	var (
		modelName = fs.String("model", "", "zoo model name")
		modelFile = fs.String("model-file", "", "graph JSON file (alternative to -model)")
		archName  = fs.String("arch", "", "preset architecture name")
		archFile  = fs.String("arch-file", "", "architecture JSON file (alternative to -arch)")
		requests  = fs.Int("requests", 32, "number of inference requests to serve")
		parallel  = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for the batch")
		seed      = fs.Uint64("seed", 1, "seed for random weights and inputs")
		verify    = fs.Float64("verify", 0, "if > 0, verify the first request within this float tolerance")
	)
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	g, err := loadModel(*modelName, *modelFile)
	if err != nil {
		fatal(err)
	}
	a, err := loadArch(*archName, *archFile)
	if err != nil {
		fatal(err)
	}
	if *requests < 1 {
		fatal(fmt.Errorf("cimmlc run: -requests must be at least 1"))
	}
	c, err := cimmlc.New(a)
	if err != nil {
		fatal(err)
	}
	w := cimmlc.RandomWeights(g, *seed)
	reqs := make([]map[int]*cimmlc.Tensor, *requests)
	for i := range reqs {
		in := map[int]*cimmlc.Tensor{}
		for _, id := range g.InputIDs() {
			t := cimmlc.NewTensor(g.MustNode(id).OutShape...)
			t.Rand(*seed+uint64(i)*131+uint64(id), 1)
			in[id] = t
		}
		reqs[i] = in
	}

	buildStart := time.Now()
	p, err := c.Build(ctx, g, w, cimmlc.CodegenOptions{},
		cimmlc.WithCalibration(reqs[0]), cimmlc.WithWorkers(*parallel))
	if err != nil {
		fatal(err)
	}
	buildTime := time.Since(buildStart)
	if *verify > 0 {
		if err := p.Verify(ctx, reqs[0], *verify); err != nil {
			fatal(err)
		}
		fmt.Printf("verify:       ok (tol %g)\n", *verify)
	}

	serveStart := time.Now()
	if _, err := p.RunBatch(ctx, reqs); err != nil {
		fatal(err)
	}
	wall := time.Since(serveStart)

	st := p.Stats()
	rep := p.Result().Report
	fmt.Printf("model:        %s on %s\n", g.Name, a.Name)
	fmt.Printf("build:        %v (compile + lower + program weights, paid once)\n", buildTime.Round(time.Microsecond))
	fmt.Printf("requests:     %d across %d workers\n", *requests, *parallel)
	fmt.Printf("wall time:    %v (%.0f ns/request, %.1f req/s)\n",
		wall.Round(time.Microsecond), float64(wall.Nanoseconds())/float64(*requests),
		float64(*requests)/wall.Seconds())
	fmt.Printf("device model: %.0f cycles/inference, %.3g energy units\n", rep.Cycles, rep.Energy)
	fmt.Printf("state pool:   %d hits, %d misses\n", st.PoolHits, st.PoolMisses)
}

func loadModel(name, file string) (*cimmlc.Graph, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("cimmlc: use either -model or -model-file, not both")
	case name != "":
		return cimmlc.Model(name)
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return cimmlc.DecodeGraph(data)
	default:
		return nil, fmt.Errorf("cimmlc: -model or -model-file is required (try -list)")
	}
}

func loadArch(name, file string) (*cimmlc.Arch, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("cimmlc: use either -arch or -arch-file, not both")
	case name != "":
		return cimmlc.Preset(name)
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return cimmlc.DecodeArch(data)
	default:
		return nil, fmt.Errorf("cimmlc: -arch or -arch-file is required (try -list)")
	}
}

func printReport(g *cimmlc.Graph, a *cimmlc.Arch, res *cimmlc.Result) {
	r := res.Report
	s := res.Schedule
	fmt.Printf("model:        %s (%d nodes, %d weights)\n", g.Name, len(g.Nodes), g.WeightCount())
	fmt.Printf("architecture: %s\n", a)
	fmt.Printf("levels:       %v  pipeline=%v stagger=%v\n", s.Levels, s.Pipeline, s.Stagger)
	fmt.Printf("segments:     %d\n", len(s.Segments))
	fmt.Printf("latency:      %.0f cycles (reload %.0f)\n", r.Cycles, r.ReloadCycles)
	fmt.Printf("peak power:   %.2f units (%.0f active crossbars)\n", r.PeakPower.Total(), r.PeakActiveXBs)
	fmt.Printf("energy:       %.3g units\n", r.Energy)
	fmt.Printf("occupancy:    %d/%d cores, %d crossbars programmed\n", r.CoresUsed, a.Chip.CoreCount(), r.XBsUsed)

	// Duplication summary: top entries by copies.
	type d struct {
		id, dup, remap int
	}
	var ds []d
	for _, id := range g.CIMNodeIDs() {
		ds = append(ds, d{id, s.DupOf(id), s.RemapOf(id)})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].dup > ds[j].dup })
	n := len(ds)
	if n > 8 {
		n = 8
	}
	fmt.Println("hottest operators (dup × remap):")
	for _, e := range ds[:n] {
		node := g.MustNode(e.id)
		fmt.Printf("  %-12s dup=%-4d remap=%d\n", node.Name, e.dup, e.remap)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
