module cimmlc

go 1.24
