// vit_sweep reproduces the flavor of the §4.4 sensitivity study: it sweeps
// the crossbar geometry and the parallel-row budget of the Table-3 baseline
// while compiling ViT-Base, showing how the architecture parameters exposed
// by Abs-arch move the achievable speedup — the design-space-exploration use
// the paper positions CIM-MLC for.
package main

import (
	"context"
	"fmt"
	"log"

	"cimmlc"
)

func main() {
	g, err := cimmlc.Model("vit-base")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweeping %s (%d weights, %d nodes)\n\n", g.Name, g.WeightCount(), len(g.Nodes))

	fmt.Println("crossbar shape sweep (constant 32k cells):")
	for _, shape := range [][2]int{{64, 512}, {128, 256}, {256, 128}, {512, 64}} {
		a := baselineArch()
		a.XB.Rows, a.XB.Cols = shape[0], shape[1]
		if a.XB.ParallelRow > a.XB.Rows {
			a.XB.ParallelRow = a.XB.Rows
		}
		report(fmt.Sprintf("%3d×%-3d", shape[0], shape[1]), g, a)
	}

	fmt.Println("\nparallel-row sweep (128×256 crossbars):")
	for _, pr := range []int{64, 32, 16, 8} {
		a := baselineArch()
		a.XB.ParallelRow = pr
		report(fmt.Sprintf("%3d rows", pr), g, a)
	}
}

func baselineArch() *cimmlc.Arch {
	a, err := cimmlc.Preset("isaac-baseline")
	if err != nil {
		log.Fatal(err)
	}
	a.XB.Cols = 256
	return a
}

func report(label string, g *cimmlc.Graph, a *cimmlc.Arch) {
	no, err := cimmlc.NoOptSchedule(g, a)
	if err != nil {
		log.Fatal(err)
	}
	rno, err := cimmlc.Simulate(no)
	if err != nil {
		log.Fatal(err)
	}
	c, err := cimmlc.New(a)
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Compile(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	r := res.Report
	fmt.Printf("  %s: %10.0f cycles  %6.2f× speedup  %2d segments  peak %7.1f\n",
		label, r.Cycles, rno.Cycles/r.Cycles, len(res.Schedule.Segments), r.PeakPower.Total())
}
