// Serving: the compile-once / run-many execution model. A Program is built
// once — full compilation, codegen and crossbar weight programming — and
// then serves a stream of inference requests from many goroutines, the way
// a CIM accelerator with stationary weights serves traffic. The example
// verifies the program against the quantized reference, serves a batch
// through the bounded worker pool, demonstrates single-request calls from
// concurrent clients, and compares the per-request cost against the
// deprecated Lower+Run-per-call path.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"cimmlc"
)

const requests = 64

func main() {
	ctx := context.Background()
	g, err := cimmlc.Model("conv-relu")
	if err != nil {
		log.Fatal(err)
	}
	a, err := cimmlc.Preset("toy-table2")
	if err != nil {
		log.Fatal(err)
	}
	c, err := cimmlc.New(a)
	if err != nil {
		log.Fatal(err)
	}
	weights := cimmlc.RandomWeights(g, 42)

	// A stream of requests, plus a calibration set drawn from the same
	// distribution (here: the first request).
	reqs := make([]map[int]*cimmlc.Tensor, requests)
	for i := range reqs {
		in := cimmlc.NewTensor(3, 32, 32)
		in.Rand(uint64(100+i), 1)
		reqs[i] = map[int]*cimmlc.Tensor{0: in}
	}

	// Compile + lower + program weights, exactly once.
	buildStart := time.Now()
	p, err := c.Build(ctx, g, weights, cimmlc.CodegenOptions{},
		cimmlc.WithCalibration(reqs[0]), cimmlc.WithWorkers(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built program for %s on %s in %v\n", g.Name, a.Name, time.Since(buildStart).Round(time.Microsecond))
	fmt.Printf("device estimate: %.0f cycles/inference\n", p.Result().Report.Cycles)

	if err := p.Verify(ctx, reqs[0], 0.05); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified bit-exactly against the quantized reference")

	// Serve the whole batch across the worker pool.
	batchStart := time.Now()
	outs, err := p.RunBatch(ctx, reqs)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(batchStart)
	outID := g.Outputs()[0]
	fmt.Printf("served %d requests in %v (%.0f ns/request); first output has %d elements\n",
		requests, wall.Round(time.Microsecond), float64(wall.Nanoseconds())/requests, outs[0][outID].Len())

	// Individual Run calls are safe from any number of goroutines — each
	// draws its own execution state from the program's pool.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := p.Run(ctx, reqs[i]); err != nil {
				log.Fatal(err)
			}
		}(i)
	}
	wg.Wait()
	st := p.Stats()
	fmt.Printf("program stats: %d requests served, state pool %d hits / %d misses\n",
		st.Requests, st.PoolHits, st.PoolMisses)

	// The deprecated path pays lowering, calibration and weight
	// programming on every call.
	fr, err := c.Lower(ctx, g, p.Result(), cimmlc.CodegenOptions{})
	if err != nil {
		log.Fatal(err)
	}
	oldStart := time.Now()
	if _, err := c.Run(ctx, g, fr, weights, reqs[0]); err != nil {
		log.Fatal(err)
	}
	oldPer := time.Since(oldStart)
	newPer := wall / requests
	fmt.Printf("per-request: Program.Run %v vs Lower+Run %v (%.1fx)\n",
		newPer.Round(time.Microsecond), oldPer.Round(time.Microsecond),
		float64(oldPer)/float64(newPer))
}
