// custom_accelerator demonstrates the generality claim of the paper: a
// brand-new WLM-mode STT-MRAM accelerator is described from scratch with the
// Abs-arch parameters, serialized to the JSON config format, and a LeNet-5
// is compiled onto it with full verification — no compiler changes needed
// for a device/organization no preset covers.
package main

import (
	"context"
	"fmt"
	"log"

	"cimmlc"
	"cimmlc/internal/arch"
)

func main() {
	// An accelerator nobody shipped: 12 cores of 8 small 64×64 STT-MRAM
	// crossbars (1-bit cells), a quarter of the wordlines active at once,
	// modest buffers, an H-tree between cores.
	custom := &cimmlc.Arch{
		Name: "sttmram-htree",
		Mode: cimmlc.WLM,
		Chip: arch.ChipTier{
			CoreRows: 3, CoreCols: 4,
			CoreNoC: arch.NoCHTree, CoreNoCCost: 2,
			L0BW:   256,
			ALUOps: 512,
		},
		Core: arch.CoreTier{
			XBRows: 2, XBCols: 4,
			XBNoC:  arch.NoCIdeal,
			L1BW:   2048,
			ALUOps: 256,
		},
		XB: arch.XBTier{
			Rows: 64, Cols: 64,
			ParallelRow: 16,
			DACBits:     1, ADCBits: 6,
			Device: arch.STTMRAM, CellBits: 1,
		},
		WeightBits: 8, ActBits: 8,
	}
	if err := custom.Validate(); err != nil {
		log.Fatal(err)
	}

	// Round-trip through the on-disk config format.
	data, err := cimmlc.EncodeArch(custom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("architecture config (%d bytes of JSON):\n%s\n\n", len(data), data)
	custom, err = cimmlc.DecodeArch(data)
	if err != nil {
		log.Fatal(err)
	}

	g, err := cimmlc.Model("lenet5")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	c, err := cimmlc.New(custom)
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Compile(ctx, g)
	if err != nil {
		log.Fatal(err)
	}
	r := res.Report
	fmt.Printf("compiled %s: levels %v, %d segments, %.0f cycles, peak power %.1f\n",
		g.Name, res.Schedule.Levels, len(res.Schedule.Segments), r.Cycles, r.PeakPower.Total())

	// Generate and execute the flow, verifying numerics end to end.
	flow, err := c.Lower(ctx, g, res, cimmlc.CodegenOptions{})
	if err != nil {
		log.Fatal(err)
	}
	st := flow.Flow.Stats()
	fmt.Printf("flow: %d CIM ops, %d DCOM ops, %d DMOV ops\n", st.CIMOps, st.DCOMOps, st.DMOVOps)

	weights := cimmlc.RandomWeights(g, 99)
	in := cimmlc.NewTensor(1, 28, 28)
	in.Rand(100, 1)
	if err := c.Verify(ctx, g, flow, weights, map[int]*cimmlc.Tensor{0: in}, 0.15); err != nil {
		log.Fatal(err)
	}
	fmt.Println("flow verified bit-exactly against the quantized reference")

	outs, err := c.Run(ctx, g, flow, weights, map[int]*cimmlc.Tensor{0: in})
	if err != nil {
		log.Fatal(err)
	}
	logits := outs[g.Outputs()[0]]
	fmt.Printf("logits: %v\n", logits.Data())
}
