// Gateway: embedding the serving subsystem. The serving package turns
// compiled Programs into a multi-model, multi-architecture service: a
// Registry lazily builds and caches one Program per (model, arch) key, a
// Batcher in front of each Program converts request streams into
// micro-batches, and Server exposes the whole thing over HTTP — the same
// gateway cmd/cimserve runs as a standalone process.
//
// This example embeds the gateway in-process: it registers a custom
// architecture, serves requests for two models on two architectures
// through one Server, demonstrates the micro-batcher under concurrent
// clients, and drains gracefully.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"cimmlc"
	"cimmlc/serving"
)

func main() {
	ctx := context.Background()

	// The registry maps (model, arch) keys to lazily-built Programs. The
	// default model source draws from the built-in zoo with deterministic
	// weights; production code supplies its own source via
	// serving.WithModelSource.
	reg := serving.NewRegistry(serving.WithWeightSeed(7))

	// User architectures register next to the presets — and malformed
	// descriptions fail here with a validation error instead of crashing
	// the process later.
	custom, err := cimmlc.Preset("toy-table2")
	if err != nil {
		log.Fatal(err)
	}
	custom.Name = "my-lab-chip"
	custom.Core.XBRows = 4 // twice the crossbars per core
	if err := reg.RegisterArch(custom); err != nil {
		log.Fatal(err)
	}

	// The server fronts every Program with a dynamic micro-batching queue:
	// requests accumulate until MaxBatch are pending or MaxDelay has
	// passed, then the whole batch flushes through RunBatch.
	gw := serving.NewServer(reg, serving.ServerConfig{
		Batch: serving.BatcherConfig{MaxBatch: 8, MaxDelay: 2 * time.Millisecond},
	})
	defer gw.Close()

	// Embed the handler in any HTTP stack; here a test listener.
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	// Two models × two architectures resident at once, served through one
	// endpoint. The first request per key pays the build; the rest reuse
	// the cached Program.
	for _, key := range []serving.Key{
		{Model: "conv-relu", Arch: "toy-table2"},
		{Model: "conv-relu", Arch: "my-lab-chip"},
		{Model: "mlp", Arch: "my-lab-chip"},
	} {
		start := time.Now()
		body, _ := json.Marshal(serving.RunRequest{Model: key.Model, Arch: key.Arch, Seed: 1})
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var rr serving.RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("%s on %s: HTTP %d", key.Model, key.Arch, resp.StatusCode)
		}
		fmt.Printf("%-10s on %-12s -> %d output tensor(s) in %v (build on first use)\n",
			key.Model, key.Arch, len(rr.Outputs), time.Since(start).Round(time.Millisecond))
	}

	// Concurrent clients drive the micro-batcher; the batcher flushes on
	// size or deadline and keeps outputs bit-identical to per-request runs.
	b, err := gw.Batcher(ctx, "conv-relu", "toy-table2")
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := cimmlc.NewTensor(3, 32, 32)
			in.Rand(uint64(100+i), 1)
			if _, err := b.Do(ctx, map[int]*cimmlc.Tensor{0: in}); err != nil {
				log.Fatal(err)
			}
		}(i)
	}
	wg.Wait()
	st := b.Stats()
	fmt.Printf("batcher: %d requests in %d batches (%.1f mean), %d size / %d deadline flushes\n",
		st.Requests, st.Batches, float64(st.Requests)/float64(st.Batches),
		st.SizeFlushes, st.DeadlineFlushes)

	for _, info := range reg.Loaded() {
		fmt.Printf("resident: %s on %s — %d requests served\n",
			info.Key.Model, info.Key.Arch, info.Stats.Requests)
	}
	fmt.Println("draining gateway")
}
