// Quickstart: the §3.4 walkthrough of the paper. Compiles the Conv-ReLU
// micro-network onto the Table-2 toy machine under all three computing
// modes using the Compiler API, prints the head of each generated
// meta-operator flow (Figure 16 c/d/e), executes the complete flow on the
// functional simulator and verifies it bit-exactly against the quantized
// reference. A second Compile of the same graph is served from the
// compiler's artifact cache, and a trace hook shows which pipeline passes
// ran.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"cimmlc"
)

func main() {
	ctx := context.Background()
	g, err := cimmlc.Model("conv-relu")
	if err != nil {
		log.Fatal(err)
	}
	weights := cimmlc.RandomWeights(g, 42)
	in := cimmlc.NewTensor(3, 32, 32)
	in.Rand(7, 1)

	for _, mode := range []cimmlc.Mode{cimmlc.CM, cimmlc.XBM, cimmlc.WLM} {
		a, err := cimmlc.Preset("toy-table2")
		if err != nil {
			log.Fatal(err)
		}
		a.Mode = mode

		var ran []string
		c, err := cimmlc.New(a, cimmlc.WithTrace(func(ev cimmlc.TraceEvent) {
			if !ev.Skipped {
				ran = append(ran, ev.Pass)
			}
		}))
		if err != nil {
			log.Fatal(err)
		}

		res, err := c.Compile(ctx, g)
		if err != nil {
			log.Fatal(err)
		}
		flow, err := c.Lower(ctx, g, res, cimmlc.CodegenOptions{})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("===== %s mode =====\n", mode)
		fmt.Printf("levels %v, latency %.0f cycles, %d crossbars programmed\n",
			res.Schedule.Levels, res.Report.Cycles, res.Report.XBsUsed)
		fmt.Printf("passes: %s\n", strings.Join(ran, " → "))
		fmt.Println(head(flow.Flow.Print(), 14))

		// Bit-exact against the quantized reference, within 5% of float.
		if err := c.Verify(ctx, g, flow, weights, map[int]*cimmlc.Tensor{0: in}, 0.05); err != nil {
			log.Fatalf("%s flow failed verification: %v", mode, err)
		}
		fmt.Println("flow verified: bit-exact vs quantized reference")

		// Repeated traffic for the same model is memoized.
		if _, err := c.Compile(ctx, g); err != nil {
			log.Fatal(err)
		}
		st := c.Stats()
		fmt.Printf("cache: %d hit, %d miss, %d entries\n\n", st.Hits, st.Misses, st.Entries)
	}
}

func head(text string, lines int) string {
	parts := strings.SplitN(text, "\n", lines+1)
	if len(parts) > lines {
		parts[lines] = "  ... (truncated for display; the in-memory flow is complete)"
	}
	return strings.Join(parts, "\n")
}
