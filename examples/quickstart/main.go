// Quickstart: the §3.4 walkthrough of the paper. Compiles the Conv-ReLU
// micro-network onto the Table-2 toy machine under all three computing
// modes, prints the head of each generated meta-operator flow (Figure 16
// c/d/e), executes the complete flow on the functional simulator and
// verifies it bit-exactly against the quantized reference.
package main

import (
	"fmt"
	"log"
	"strings"

	"cimmlc"
)

func main() {
	g, err := cimmlc.Model("conv-relu")
	if err != nil {
		log.Fatal(err)
	}
	weights := cimmlc.RandomWeights(g, 42)
	in := cimmlc.NewTensor(3, 32, 32)
	in.Rand(7, 1)

	for _, mode := range []cimmlc.Mode{cimmlc.CM, cimmlc.XBM, cimmlc.WLM} {
		a, err := cimmlc.Preset("toy-table2")
		if err != nil {
			log.Fatal(err)
		}
		a.Mode = mode

		res, err := cimmlc.Compile(g, a, cimmlc.Options{})
		if err != nil {
			log.Fatal(err)
		}
		flow, err := cimmlc.GenerateFlow(g, a, res, cimmlc.CodegenOptions{})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("===== %s mode =====\n", mode)
		fmt.Printf("levels %v, latency %.0f cycles, %d crossbars programmed\n",
			res.Schedule.Levels, res.Report.Cycles, res.Report.XBsUsed)
		fmt.Println(head(flow.Flow.Print(), 14))

		// Bit-exact against the quantized reference, within 5% of float.
		if err := cimmlc.VerifyFlow(g, a, flow, weights, map[int]*cimmlc.Tensor{0: in}, 0.05); err != nil {
			log.Fatalf("%s flow failed verification: %v", mode, err)
		}
		fmt.Println("flow verified: bit-exact vs quantized reference")
		fmt.Println()
	}
}

func head(text string, lines int) string {
	parts := strings.SplitN(text, "\n", lines+1)
	if len(parts) > lines {
		parts[lines] = "  ... (truncated for display; the in-memory flow is complete)"
	}
	return strings.Join(parts, "\n")
}
