// resnet_pipeline walks the multi-level scheduling of a ResNet-18 on the
// ISAAC-like Table-3 baseline (the Figure 21 study): it compares the
// unoptimized schedule, each CG-grained technique, and the MVM/VVM
// refinements, reporting latency, peak power and resource occupancy at each
// step — the "what does each level buy me" view a deployment engineer wants.
package main

import (
	"fmt"
	"log"

	"cimmlc"
)

func main() {
	g, err := cimmlc.Model("resnet18")
	if err != nil {
		log.Fatal(err)
	}
	a, err := cimmlc.Preset("isaac-baseline")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s (%d weights) on %s\n\n", g.Name, g.WeightCount(), a)

	noOpt, err := cimmlc.NoOptSchedule(g, a)
	if err != nil {
		log.Fatal(err)
	}
	base, err := cimmlc.Simulate(noOpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %12.0f cycles  %8.1f peak power\n", "w/o optimization", base.Cycles, base.PeakPower.Total())

	steps := []struct {
		label string
		opt   cimmlc.Options
	}{
		{"CG pipeline only", cimmlc.Options{MaxLevel: cimmlc.CM, DisableDuplication: true}},
		{"CG duplication only", cimmlc.Options{MaxLevel: cimmlc.CM, DisablePipeline: true}},
		{"CG pipeline + duplication", cimmlc.Options{MaxLevel: cimmlc.CM}},
		{"CG + MVM (Eq.1 + stagger)", cimmlc.Options{MaxLevel: cimmlc.XBM}},
		{"CG + MVM + VVM (full)", cimmlc.Options{}},
	}
	for _, st := range steps {
		res, err := cimmlc.Compile(g, a, st.opt)
		if err != nil {
			log.Fatal(err)
		}
		r := res.Report
		fmt.Printf("%-28s %12.0f cycles  %8.1f peak power  %6.1f× speedup  %4d/%d cores\n",
			st.label, r.Cycles, r.PeakPower.Total(), base.Cycles/r.Cycles,
			r.CoresUsed, a.Chip.CoreCount())
	}

	// The Poly-Schedule comparison of Figure 20(d).
	poly, err := cimmlc.PolySchedule(g, a)
	if err != nil {
		log.Fatal(err)
	}
	rp, err := cimmlc.Simulate(poly)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPoly-Schedule [22]           %12.0f cycles  (%.1f× slower than full CIM-MLC)\n",
		rp.Cycles, rp.Cycles/mustCycles(g, a))
}

func mustCycles(g *cimmlc.Graph, a *cimmlc.Arch) float64 {
	res, err := cimmlc.Compile(g, a, cimmlc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return res.Report.Cycles
}
