// resnet_pipeline walks the multi-level scheduling of a ResNet-18 on the
// ISAAC-like Table-3 baseline (the Figure 21 study): it compares the
// unoptimized schedule, each CG-grained technique, and the MVM/VVM
// refinements, reporting latency, peak power and resource occupancy at each
// step — the "what does each level buy me" view a deployment engineer wants.
package main

import (
	"context"
	"fmt"
	"log"

	"cimmlc"
)

func main() {
	g, err := cimmlc.Model("resnet18")
	if err != nil {
		log.Fatal(err)
	}
	a, err := cimmlc.Preset("isaac-baseline")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s (%d weights) on %s\n\n", g.Name, g.WeightCount(), a)

	noOpt, err := cimmlc.NoOptSchedule(g, a)
	if err != nil {
		log.Fatal(err)
	}
	base, err := cimmlc.Simulate(noOpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %12.0f cycles  %8.1f peak power\n", "w/o optimization", base.Cycles, base.PeakPower.Total())

	ctx := context.Background()
	steps := []struct {
		label string
		opts  []cimmlc.Option
	}{
		{"CG pipeline only", []cimmlc.Option{cimmlc.WithMaxLevel(cimmlc.CM), cimmlc.WithoutDuplication()}},
		{"CG duplication only", []cimmlc.Option{cimmlc.WithMaxLevel(cimmlc.CM), cimmlc.WithoutPipeline()}},
		{"CG pipeline + duplication", []cimmlc.Option{cimmlc.WithMaxLevel(cimmlc.CM)}},
		{"CG + MVM (Eq.1 + stagger)", []cimmlc.Option{cimmlc.WithMaxLevel(cimmlc.XBM)}},
		{"CG + MVM + VVM (full)", nil},
	}
	for _, st := range steps {
		c, err := cimmlc.New(a, st.opts...)
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Compile(ctx, g)
		if err != nil {
			log.Fatal(err)
		}
		r := res.Report
		fmt.Printf("%-28s %12.0f cycles  %8.1f peak power  %6.1f× speedup  %4d/%d cores\n",
			st.label, r.Cycles, r.PeakPower.Total(), base.Cycles/r.Cycles,
			r.CoresUsed, a.Chip.CoreCount())
	}

	// The Poly-Schedule comparison of Figure 20(d).
	poly, err := cimmlc.PolySchedule(g, a)
	if err != nil {
		log.Fatal(err)
	}
	rp, err := cimmlc.Simulate(poly)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPoly-Schedule [22]           %12.0f cycles  (%.1f× slower than full CIM-MLC)\n",
		rp.Cycles, rp.Cycles/mustCycles(g, a))
}

func mustCycles(g *cimmlc.Graph, a *cimmlc.Arch) float64 {
	c, err := cimmlc.New(a)
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Compile(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	return res.Report.Cycles
}
