package cimmlc

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestRunBatchErrorContract pins RunBatch's result/error contract across the
// inline (workers==1) and pooled paths, with the batched kernels both enabled
// and disabled: the result slice is nil whenever the error is non-nil, an
// empty batch on a live context yields an empty non-nil slice, and a
// mid-batch failure names the failing request.
func TestRunBatchErrorContract(t *testing.T) {
	ctx := context.Background()
	good := func(seed uint64) map[int]*Tensor {
		in := NewTensor(3, 32, 32)
		in.Rand(seed, 1)
		return map[int]*Tensor{0: in}
	}
	bad := map[int]*Tensor{0: NewTensor(2, 2)} // wrong shape for the input region

	configs := []struct {
		name  string
		bopts []BuildOption
	}{
		{"inline", []BuildOption{WithWorkers(1)}},
		{"pooled", []BuildOption{WithWorkers(4)}},
		{"inline-unbatched", []BuildOption{WithWorkers(1), WithBatchedExecution(false)}},
		{"pooled-unbatched", []BuildOption{WithWorkers(4), WithBatchedExecution(false)}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			_, _, _, _, p := buildToyProgram(t, cfg.bopts...)

			t.Run("empty", func(t *testing.T) {
				outs, err := p.RunBatch(ctx, nil)
				if err != nil || outs == nil || len(outs) != 0 {
					t.Fatalf("empty batch: outs=%v err=%v, want empty non-nil outs and nil err", outs, err)
				}
			})
			t.Run("empty-cancelled", func(t *testing.T) {
				cctx, cancel := context.WithCancel(ctx)
				cancel()
				outs, err := p.RunBatch(cctx, nil)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", err)
				}
				if outs != nil {
					t.Fatalf("outs = %v alongside error, want nil", outs)
				}
			})
			t.Run("pre-cancelled", func(t *testing.T) {
				cctx, cancel := context.WithCancel(ctx)
				cancel()
				outs, err := p.RunBatch(cctx, []map[int]*Tensor{good(1), good(2)})
				if err == nil || outs != nil {
					t.Fatalf("outs=%v err=%v, want nil outs and an error", outs, err)
				}
			})
			t.Run("mid-batch-failure", func(t *testing.T) {
				outs, err := p.RunBatch(ctx, []map[int]*Tensor{good(3), bad, good(4), good(5)})
				if err == nil || !strings.Contains(err.Error(), "request 1") {
					t.Fatalf("err = %v, want an error naming request 1", err)
				}
				if outs != nil {
					t.Fatalf("outs = %v alongside error, want nil", outs)
				}
			})
		})
	}
}

// TestRunBatchPrefersRequestErrorOverCancel forces the cancel/first-error
// interleaving: request 0 is parked inside its worker until the caller
// cancels the batch, while request 1 — already past Run's context check — is
// held until request 0's cancellation has been recorded, and only then fails
// with a genuine input error. The caller must still receive request 1's
// indexed error, not the bare (or request-0-attributed) context.Canceled
// that arrived first.
func TestRunBatchPrefersRequestErrorOverCancel(t *testing.T) {
	_, _, _, inputs, p := buildToyProgram(t, WithWorkers(2), WithBatchedExecution(false))
	badIn := NewTensor(3, 32, 32)
	reqs := []map[int]*Tensor{inputs, {99: badIn}} // node 99 does not exist

	pctx, pcancel := context.WithCancel(context.Background())
	defer pcancel()

	claimed0 := make(chan struct{})
	entered1 := make(chan struct{})
	recorded0 := make(chan struct{})
	var once0, once1, onceRec sync.Once

	testHookBatchClaim = func(i int) {
		if i == 0 {
			once0.Do(func() { close(claimed0) })
			<-pctx.Done() // hold request 0 until the caller cancels the batch
		}
	}
	testHookRunStart = func(ctx context.Context, in map[int]*Tensor) {
		if _, ok := in[99]; ok {
			once1.Do(func() { close(entered1) })
			<-recorded0 // request 0's cancellation must be recorded first
		}
	}
	testHookBatchFail = func(i int) {
		if i == 0 {
			onceRec.Do(func() { close(recorded0) })
		}
	}
	defer func() {
		testHookBatchClaim, testHookRunStart, testHookBatchFail = nil, nil, nil
	}()

	var (
		outs []map[int]*Tensor
		err  error
		done = make(chan struct{})
	)
	go func() {
		defer close(done)
		outs, err = p.RunBatch(pctx, reqs)
	}()
	<-claimed0 // request 0 parked inside its worker
	<-entered1 // request 1 past the context check, about to fail for real
	pcancel()  // cancellation now races the genuine failure — and must lose
	<-done

	if outs != nil {
		t.Fatalf("outs = %v alongside error, want nil", outs)
	}
	if err == nil || !strings.Contains(err.Error(), "request 1") || !strings.Contains(err.Error(), "unknown node 99") {
		t.Fatalf("err = %v, want request 1's unknown-node error", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want the genuine request error, not cancellation", err)
	}
}

// TestRunBatchBatchedBitIdentity drives the batched kernel path under the
// fan-out pool (run with -race) and requires every result to be bit-identical
// to a sequential Run of the same request. The second round reuses pooled
// BatchStates. The stats counters prove the batched path actually served the
// requests rather than silently falling back.
func TestRunBatchBatchedBitIdentity(t *testing.T) {
	ctx := context.Background()
	_, _, _, _, p := buildToyProgram(t, WithWorkers(8))

	const n = 24
	reqs := make([]map[int]*Tensor, n)
	want := make([]map[int]*Tensor, n)
	for i := range reqs {
		in := NewTensor(3, 32, 32)
		in.Rand(uint64(1000+i), 1)
		reqs[i] = map[int]*Tensor{0: in}
		out, err := p.Run(ctx, reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	before := p.Stats()
	for round := 0; round < 2; round++ {
		outs, err := p.RunBatch(ctx, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != n {
			t.Fatalf("round %d: got %d results, want %d", round, len(outs), n)
		}
		for i := range outs {
			sameOutputs(t, outs[i], want[i])
		}
	}
	st := p.Stats()
	if got := st.BatchedRequests - before.BatchedRequests; got != 2*n {
		t.Fatalf("BatchedRequests grew by %d, want %d (batched path did not engage)", got, 2*n)
	}
	if st.BatchRuns == before.BatchRuns {
		t.Fatal("BatchRuns did not grow")
	}
}

// TestRunBatchRaggedShapeFallback mixes two input signatures so no group
// reaches two lanes per worker: RunBatch must fall back to per-request
// execution (BatchedRequests stays flat) and still return correct,
// request-ordered results.
func TestRunBatchRaggedShapeFallback(t *testing.T) {
	ctx := context.Background()
	_, g, _, inputs, p := buildToyProgram(t, WithWorkers(4))
	ref, err := p.Run(ctx, inputs)
	if err != nil {
		t.Fatal(err)
	}
	outID := g.Outputs()[0]
	aux := NewTensor(ref[outID].Shape()...) // zeros; overwritten during execution

	const n = 6
	reqs := make([]map[int]*Tensor, n)
	want := make([]map[int]*Tensor, n)
	for i := range reqs {
		in := NewTensor(3, 32, 32)
		in.Rand(uint64(2000+i), 1)
		if i%2 == 0 {
			reqs[i] = map[int]*Tensor{0: in}
		} else {
			reqs[i] = map[int]*Tensor{0: in, outID: aux}
		}
		out, err := p.Run(ctx, reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	before := p.Stats()
	outs, err := p.RunBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		sameOutputs(t, outs[i], want[i])
	}
	if d := p.Stats().BatchedRequests - before.BatchedRequests; d != 0 {
		t.Fatalf("ragged batch served %d requests on the batched path, want per-request fallback", d)
	}
}

// TestRunBatchSingleRequestFallsBack pins batch size 1 to the per-request
// path with output equivalence.
func TestRunBatchSingleRequestFallsBack(t *testing.T) {
	ctx := context.Background()
	_, _, _, inputs, p := buildToyProgram(t, WithWorkers(4))
	want, err := p.Run(ctx, inputs)
	if err != nil {
		t.Fatal(err)
	}
	before := p.Stats()
	outs, err := p.RunBatch(ctx, []map[int]*Tensor{inputs})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d results, want 1", len(outs))
	}
	sameOutputs(t, outs[0], want)
	if d := p.Stats().BatchedRequests - before.BatchedRequests; d != 0 {
		t.Fatalf("batch of one served %d requests on the batched path, want 0", d)
	}
}

// FuzzBatchedRun drives random (model, arch, seed, batch) points through
// RunBatch with a single worker — forcing each same-shaped group into one
// micro-batch on the compiled kernels — and requires every lane's output to
// match a per-request Run byte for byte.
func FuzzBatchedRun(f *testing.F) {
	models := []string{"conv-relu", "mlp", "lenet5"}
	archs := []string{"isaac-baseline", "puma", "toy-table2"}
	f.Add(uint8(0), uint8(2), uint64(1), uint8(2))
	f.Add(uint8(1), uint8(2), uint64(7), uint8(1))
	f.Add(uint8(2), uint8(0), uint64(3), uint8(3))
	f.Fuzz(func(t *testing.T, mi, ai uint8, seed uint64, nb uint8) {
		model := models[int(mi)%len(models)]
		archName := archs[int(ai)%len(archs)]
		lanes := int(nb)%5 + 2
		ctx := context.Background()

		g, err := Model(model)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Preset(archName)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(a, WithCache(0))
		if err != nil {
			t.Fatal(err)
		}
		w := RandomWeights(g, seed|1)
		calib := map[int]*Tensor{}
		for _, id := range g.InputIDs() {
			tt := NewTensor(g.MustNode(id).OutShape...)
			tt.Rand(seed+uint64(id), 1)
			calib[id] = tt
		}
		p, err := c.Build(ctx, g, w, CodegenOptions{}, WithCalibration(calib), WithWorkers(1))
		if err != nil {
			t.Fatalf("%s/%s seed %d: build: %v", model, archName, seed, err)
		}

		reqs := make([]map[int]*Tensor, lanes)
		want := make([]map[int]*Tensor, lanes)
		for i := range reqs {
			req := map[int]*Tensor{}
			for _, id := range g.InputIDs() {
				tt := NewTensor(g.MustNode(id).OutShape...)
				tt.Rand(seed+uint64(31*i+id+1), 1)
				req[id] = tt
			}
			reqs[i] = req
			out, err := p.Run(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = out
		}
		before := p.Stats()
		outs, err := p.RunBatch(ctx, reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range outs {
			sameOutputs(t, outs[i], want[i])
		}
		if d := p.Stats().BatchedRequests - before.BatchedRequests; d != uint64(lanes) {
			t.Fatalf("%s/%s seed %d: %d of %d requests took the batched path", model, archName, seed, d, lanes)
		}
	})
}
