// Package cimmlc is a Go reproduction of CIM-MLC, the multi-level
// compilation stack for computing-in-memory accelerators (Qu et al.,
// ASPLOS 2024).
//
// The package compiles DNN computation graphs onto CIM accelerators
// described by a three-tier hardware abstraction (chip / core / crossbar)
// and a computing-mode abstraction (CM / XBM / WLM), producing an optimized
// schedule (operator duplication, inter-operator pipelining, staggered
// crossbar activation, wordline remapping, resource-adaptive segmentation),
// a placement of weights onto physical crossbars, a performance report
// (latency, energy, peak power) and an executable meta-operator flow.
//
// The primary entry point is the Compiler: created once per architecture,
// it owns a pluggable pass pipeline and an LRU artifact cache, and is safe
// for concurrent use from many goroutines. For execution, Compiler.Build
// compiles a model once into an immutable Program — weights quantized and
// programmed into a crossbar image, the stationary-weight model CIM
// hardware serves — and Program.Run/RunBatch execute inference requests
// against pooled per-request state.
//
// Quickstart:
//
//	g, _ := cimmlc.Model("resnet18")
//	a, _ := cimmlc.Preset("isaac-baseline")
//	c, _ := cimmlc.New(a)
//	res, _ := c.Compile(context.Background(), g)
//	fmt.Println(res.Report.Cycles)
//
//	p, _ := c.Build(context.Background(), g, weights, cimmlc.CodegenOptions{},
//		cimmlc.WithCalibration(calib))
//	outs, _ := p.Run(context.Background(), inputs)
//
// See examples/ for complete programs and DESIGN.md for the architecture of
// the implementation, including the pass-pipeline design and the migration
// table from the deprecated free functions to the Compiler and Program
// methods.
package cimmlc

import (
	"context"

	"cimmlc/internal/arch"
	"cimmlc/internal/baseline"
	"cimmlc/internal/cg"
	"cimmlc/internal/codegen"
	"cimmlc/internal/core"
	"cimmlc/internal/cost"
	"cimmlc/internal/experiments"
	"cimmlc/internal/graph"
	"cimmlc/internal/mapping"
	"cimmlc/internal/models"
	"cimmlc/internal/mop"
	"cimmlc/internal/perfsim"
	"cimmlc/internal/sched"
	"cimmlc/internal/tensor"
	"cimmlc/internal/tuner"
)

// Core compiler types.
type (
	// Arch is the hardware abstraction (Abs-arch + Abs-com) of §3.2.
	Arch = arch.Arch
	// Mode is the computing-mode abstraction: CM, XBM or WLM.
	Mode = arch.Mode
	// Graph is the DNN computation-graph IR.
	Graph = graph.Graph
	// Weights maps weighted node IDs to their tensors.
	Weights = graph.Weights
	// Tensor is the dense float32 tensor used for weights and activations.
	Tensor = tensor.Tensor
	// Options tunes compilation; the zero value enables the full stack.
	//
	// Deprecated: pass functional Options to New instead (WithMaxLevel,
	// WithoutPipeline, …). Options remains for the deprecated free
	// functions.
	Options = core.Options
	// Result carries the schedule, placement, report and cost model.
	Result = core.Result
	// Schedule is the multi-level scheduling decision record.
	Schedule = sched.Schedule
	// Placement assigns operator tiles to physical crossbars.
	Placement = mapping.Placement
	// CostModel is the shared per-operator cycle/footprint model.
	CostModel = cost.Model
	// Report is the performance simulation result.
	Report = perfsim.Report
	// Flow is a compiled meta-operator program.
	Flow = mop.Flow
	// FlowResult bundles a generated flow with its buffer layout.
	FlowResult = codegen.Result
	// CodegenOptions controls meta-operator emission.
	CodegenOptions = codegen.Options
	// ExperimentTable is a regenerated paper table/figure.
	ExperimentTable = experiments.Table
	// Allocator selects the CG duplication-search strategy.
	Allocator = cg.Allocator
	// Pass is one pluggable stage of the compilation pipeline; see
	// WithPass.
	Pass = core.Pass
	// PassContext carries one compilation's state through the pipeline.
	PassContext = core.PassContext
	// TraceEvent describes one pipeline step; see WithTrace.
	TraceEvent = core.TraceEvent
	// Budget bounds the schedule autotuner's search; see WithAutoTune. The
	// zero value selects the default bounds.
	Budget = tuner.Budget
	// TuningStats reports an autotune run (heuristic vs tuned cycles,
	// candidates evaluated, accepted moves); see Result.Tuning and
	// ProgramStats.Tuning.
	TuningStats = tuner.Stats
	// Target names a node's execution target under multi-target
	// compilation (WithHostFallback): the CIM accelerator or the host CPU.
	Target = graph.Target
	// PartitionInfo bundles a multi-target compilation's plan and
	// per-subgraph results; see Result.Partition.
	PartitionInfo = core.PartitionInfo
)

// Computing modes.
const (
	CM  = arch.CM
	XBM = arch.XBM
	WLM = arch.WLM
)

// Execution targets of the partitioning pass.
const (
	TargetCIM  = graph.TargetCIM
	TargetHost = graph.TargetHost
)

// ErrOverCapacity reports that a model's crossbar footprint exceeds one
// chip under WithStationaryWeights: serving it on a single chip would
// require weight reloading. Detect it with errors.Is and fall back to
// multi-chip pipelining (Compiler.BuildPipeline, serving/fleet).
var ErrOverCapacity = cg.ErrOverCapacity

// Duplication-search strategies for WithAllocator.
const (
	AllocDP        = cg.AllocDP
	AllocWaterfill = cg.AllocWaterfill
)

// Built-in pass names, usable as WithPass anchors.
const (
	PassCG       = core.PassCG
	PassMVM      = core.PassMVM
	PassVVM      = core.PassVVM
	PassPlace    = core.PassPlace
	PassSimulate = core.PassSimulate
)

// Preset returns a fresh copy of a named preset architecture
// ("isaac-baseline", "puma", "jia-isscc21", "jain-jssc21", "toy-table2").
// Names are case-insensitive.
func Preset(name string) (*Arch, error) { return arch.Preset(name) }

// Presets lists the preset architecture names.
func Presets() []string { return arch.PresetNames() }

// DecodeArch parses an architecture description from JSON.
func DecodeArch(data []byte) (*Arch, error) { return arch.Decode(data) }

// EncodeArch serializes an architecture description to JSON.
func EncodeArch(a *Arch) ([]byte, error) { return arch.Encode(a) }

// DecodeGraph parses a computation graph from JSON.
func DecodeGraph(data []byte) (*Graph, error) { return graph.Decode(data) }

// EncodeGraph serializes a computation graph to JSON.
func EncodeGraph(g *Graph) ([]byte, error) { return graph.Encode(g) }

// Model builds a fresh copy of a named zoo model ("resnet18", "vgg16",
// "vit-base", …). Names are case-insensitive.
func Model(name string) (*Graph, error) { return models.Build(name) }

// ModelNames lists the model zoo.
func ModelNames() []string { return models.Names() }

// MixedModelNames lists the zoo models containing host-only operators; they
// compile only under WithHostFallback.
func MixedModelNames() []string { return models.MixedNames() }

// ModelMixed reports whether the named zoo model contains host-only
// operators (and therefore requires WithHostFallback to compile).
func ModelMixed(name string) bool { return models.Mixed(name) }

// Compile runs the multi-level scheduling workflow of Figure 3: CG-grained
// optimization always, MVM-grained when the target exposes XBM or finer,
// VVM-grained when it exposes WLM.
//
// Deprecated: use New and Compiler.Compile, which add reuse across
// compilations, caching, cancellation and pluggable passes.
func Compile(g *Graph, a *Arch, opt Options) (*Result, error) {
	c, err := New(a, legacyOptions(opt)...)
	if err != nil {
		return nil, err
	}
	return c.Compile(context.Background(), g)
}

// GenerateFlow lowers a compilation result into its meta-operator flow.
//
// Deprecated: use Compiler.Lower.
func GenerateFlow(g *Graph, a *Arch, res *Result, opt CodegenOptions) (*FlowResult, error) {
	c, err := New(a, WithCache(0))
	if err != nil {
		return nil, err
	}
	return c.Lower(context.Background(), g, res, opt)
}

// RunFlow executes a generated flow on the functional simulator and returns
// the per-node output tensors.
//
// Deprecated: use Compiler.Run.
func RunFlow(g *Graph, a *Arch, fr *FlowResult, w Weights, inputs map[int]*Tensor) (map[int]*Tensor, error) {
	c, err := New(a, WithCache(0))
	if err != nil {
		return nil, err
	}
	return c.Run(context.Background(), g, fr, w, inputs)
}

// VerifyFlow checks a generated flow bit-exactly against the quantized
// reference executor and within floatTol of the float reference.
//
// Deprecated: use Compiler.Verify.
func VerifyFlow(g *Graph, a *Arch, fr *FlowResult, w Weights, inputs map[int]*Tensor, floatTol float64) error {
	c, err := New(a, WithCache(0))
	if err != nil {
		return err
	}
	return c.Verify(context.Background(), g, fr, w, inputs, floatTol)
}

// legacyOptions translates the deprecated Options struct into functional
// options for the default Compiler the free functions delegate to. The
// cache is disabled to preserve the one-shot semantics of the old API, and
// invalid MaxLevel/Allocator values are dropped rather than forwarded — the
// old implementation silently ignored them, and the deprecated entry points
// must keep compiling for such callers (New rejects them for new code).
func legacyOptions(opt Options) []Option {
	opts := []Option{WithCache(0)}
	if opt.DisablePipeline {
		opts = append(opts, WithoutPipeline())
	}
	if opt.DisableDuplication {
		opts = append(opts, WithoutDuplication())
	}
	if opt.DisableStagger {
		opts = append(opts, WithoutStagger())
	}
	if opt.DisableRemap {
		opts = append(opts, WithoutRemap())
	}
	if opt.MaxLevel.Valid() {
		opts = append(opts, WithMaxLevel(opt.MaxLevel))
	}
	if opt.Allocator == AllocDP || opt.Allocator == AllocWaterfill {
		opts = append(opts, WithAllocator(opt.Allocator))
	}
	return opts
}

// ParseFlow reads a flow back from its printed concrete syntax.
func ParseFlow(text string) (*Flow, error) { return mop.Parse(text) }

// NewTensor returns a zero tensor with the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// TensorFromSlice wraps data in a tensor of the given shape. The slice is
// used directly (not copied) and must have exactly the number of elements
// the shape implies.
func TensorFromSlice(data []float32, shape ...int) (*Tensor, error) {
	return tensor.FromSlice(data, shape...)
}

// RandomWeights returns deterministic pseudo-random weights for a graph.
func RandomWeights(g *Graph, seed uint64) Weights { return graph.RandomWeights(g, seed) }

// Simulate runs a schedule through the performance simulator.
func Simulate(s *Schedule) (*Report, error) { return perfsim.Simulate(s) }

// NoOptSchedule returns the unoptimized layer-serial schedule for a model.
func NoOptSchedule(g *Graph, a *Arch) (*Schedule, error) { return baseline.NoOpt(g, a) }

// PolySchedule returns the Poly-Schedule [22] comparison schedule.
func PolySchedule(g *Graph, a *Arch) (*Schedule, error) { return baseline.PolySchedule(g, a) }

// Experiment regenerates a paper table/figure by ID (e.g. "fig21a"). IDs
// are case-insensitive.
func Experiment(id string) (*ExperimentTable, error) { return experiments.Run(id) }

// ExperimentIDs lists the reproducible tables and figures.
func ExperimentIDs() []string { return experiments.IDs() }
