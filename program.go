package cimmlc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cimmlc/internal/funcsim"
	"cimmlc/internal/graph"
	"cimmlc/internal/tensor"
)

// Program is an executable, immutable compilation artifact: the
// shape-inferred graph, the optimized schedule, the generated meta-operator
// flow, and a crossbar image with the weights already quantized, bit-sliced
// and programmed. Building a Program pays the full compile + lower +
// weight-programming cost exactly once; each Run then executes only the
// flow's compute section against a pooled per-request execution state, the
// stationary-weight serving model CIM hardware is built for.
//
// A Program is safe for concurrent use from many goroutines.
type Program struct {
	arch  Arch // private copy, never mutated
	g     *Graph
	res   *Result
	fr    *FlowResult
	w     Weights
	calib map[int]*Tensor
	img   *funcsim.Image
	outs  []int // the graph's output node IDs

	// parts is non-nil for partitioned (multi-target) programs: the
	// subprograms in execution order. img and fr are then nil — Run
	// orchestrates the parts through a shared tensor environment instead of
	// executing a single flow.
	parts []*subprogram

	// bflow is the flow body precompiled into batched kernel closures; nil
	// for partitioned programs and under WithBatchedExecution(false), in
	// which case RunBatch always takes the per-request paths.
	bflow *funcsim.CompiledFlow

	workers int

	pool       sync.Pool // of *funcsim.State
	bpool      sync.Pool // of *funcsim.BatchState
	requests   atomic.Uint64
	poolHits   atomic.Uint64
	poolMisses atomic.Uint64
	batchRuns  atomic.Uint64
	batchReqs  atomic.Uint64
}

// Test seams, nil outside tests: testHookBatchClaim runs after a pooled
// RunBatch worker claims request i; testHookRunStart runs inside run after
// the context check; testHookBatchFail runs after a request error has been
// recorded. They exist to force cancel/first-error interleavings that are
// otherwise timing-dependent.
var (
	testHookBatchClaim func(i int)
	testHookRunStart   func(ctx context.Context, inputs map[int]*Tensor)
	testHookBatchFail  func(i int)
)

// ProgramStats reports a program's serving counters.
type ProgramStats struct {
	// Requests is the number of successfully completed Run calls.
	Requests uint64
	// PoolHits counts runs that reused a pooled execution state;
	// PoolMisses counts runs that had to allocate a fresh one.
	PoolHits   uint64
	PoolMisses uint64
	// BatchRuns counts micro-batches executed on the batched kernel path;
	// BatchedRequests counts the requests those micro-batches served (also
	// included in Requests).
	BatchRuns       uint64
	BatchedRequests uint64
	// Tuning reports the autotune search the program's schedule came from
	// (tuned vs heuristic cycles); nil when the program was compiled without
	// WithAutoTune. Treat it as read-only.
	Tuning *TuningStats
	// Partition summarizes the multi-target plan for partitioned programs
	// (host fallback on a graph with host-only operators); nil for
	// monolithic programs, including fully supported graphs compiled under
	// WithHostFallback.
	Partition *PartitionStats
}

// BuildOption configures Compiler.Build.
type BuildOption func(*buildConfig)

type buildConfig struct {
	calib   map[int]*Tensor
	workers int
	noBatch bool
}

// WithCalibration supplies the activation-calibration inputs used to fix
// the program's quantization scales at build time. Calibration inputs
// should be drawn from the same distribution as serving traffic; when
// omitted, Build calibrates on deterministic pseudo-random inputs.
func WithCalibration(inputs map[int]*Tensor) BuildOption {
	return func(c *buildConfig) { c.calib = inputs }
}

// WithWorkers bounds RunBatch's worker pool; n <= 0 (the default) uses
// GOMAXPROCS.
func WithWorkers(n int) BuildOption {
	return func(c *buildConfig) { c.workers = n }
}

// WithBatchedExecution toggles RunBatch's batched kernel path (default on):
// same-shaped requests are grouped into micro-batches that stream through
// the precompiled flow kernels together, one pass over each crossbar's
// weights serving the whole micro-batch. Outputs are bit-identical to
// per-request execution; disable only to pin the per-request path (baseline
// benchmarks, tests of the worker pool).
func WithBatchedExecution(on bool) BuildOption {
	return func(c *buildConfig) { c.noBatch = !on }
}

// Build compiles g once for serving: it runs the full pass pipeline
// (through the compiler's artifact cache), lowers the result to a
// meta-operator flow, calibrates quantization, and programs the flow's
// init section into an immutable crossbar image. The returned Program
// serves any number of Run / RunBatch calls without recompiling or
// reprogramming weights.
//
// The graph, weights and calibration tensors must not be mutated after
// Build returns.
func (c *Compiler) Build(ctx context.Context, g *Graph, w Weights, opt CodegenOptions, bopts ...BuildOption) (*Program, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if g == nil {
		return nil, fmt.Errorf("cimmlc: Build: nil graph")
	}
	var cfg buildConfig
	for _, o := range bopts {
		if o != nil {
			o(&cfg)
		}
	}
	res, err := c.Compile(ctx, g)
	if err != nil {
		return nil, err
	}
	if res.Partition != nil {
		return c.buildPartitioned(ctx, res, w, opt, cfg)
	}
	fr, err := c.Lower(ctx, g, res, opt)
	if err != nil {
		return nil, err
	}
	p, err := c.newProgram(g, fr, w, cfg)
	if err != nil {
		return nil, fmt.Errorf("cimmlc: Build: %w", err)
	}
	p.res = res
	return p, nil
}

// newProgram assembles a Program around an already-lowered flow: it clones
// and shape-infers the graph, calibrates an image, and programs the flow's
// init section. Shared by Build and the one-shot Run/Verify wrappers.
func (c *Compiler) newProgram(g *Graph, fr *FlowResult, w Weights, cfg buildConfig) (*Program, error) {
	if fr == nil || fr.Flow == nil || fr.Layout == nil {
		return nil, fmt.Errorf("nil flow result")
	}
	if fr.Truncated {
		return nil, fmt.Errorf("flow was truncated by codegen (MaxWindowsPerOp); not executable")
	}
	// Validate once here: per-request execution (RunBody) skips it.
	if err := fr.Flow.Validate(); err != nil {
		return nil, err
	}
	gc, err := cloneGraph(g)
	if err != nil {
		return nil, err
	}
	calib := cfg.calib
	if calib == nil {
		calib = defaultCalibration(gc)
	}
	p := &Program{
		arch:    c.arch,
		g:       gc,
		fr:      fr,
		w:       w,
		calib:   calib,
		outs:    gc.Outputs(),
		workers: cfg.workers,
	}
	img, err := funcsim.NewImage(gc, &p.arch, fr.Layout, w, calib)
	if err != nil {
		return nil, err
	}
	if err := img.ProgramInit(fr.Flow.Init); err != nil {
		return nil, err
	}
	p.img = img
	if !cfg.noBatch {
		// Precompile the flow body into batched kernel closures (specialized
		// on op, shape and precision) so RunBatch can stream micro-batches
		// through one dispatch-free pass per operator.
		bf, err := img.CompileBody(fr.Flow.Body)
		if err != nil {
			return nil, fmt.Errorf("compiling batched kernels: %w", err)
		}
		p.bflow = bf
	}
	return p, nil
}

// defaultCalibration generates deterministic pseudo-random inputs for every
// Input node, giving the quantizers a symmetric activation range when the
// caller has no calibration set.
func defaultCalibration(g *Graph) map[int]*Tensor {
	calib := map[int]*Tensor{}
	for _, id := range g.InputIDs() {
		n := g.MustNode(id)
		t := tensor.New(n.OutShape...)
		t.Rand(0x9e3779b97f4a7c15^uint64(id), 1)
		calib[id] = t
	}
	return calib
}

// Run executes one inference: inputs are quantized with the program's
// calibrated scales, the flow's compute section runs against a pooled
// execution state, and the tensors of the graph's output nodes are
// returned, keyed by node ID. (The deprecated Compiler.Run returns every
// node's tensor; serving extracts only the network outputs.) Safe for
// concurrent use.
func (p *Program) Run(ctx context.Context, inputs map[int]*Tensor) (map[int]*Tensor, error) {
	return p.run(ctx, inputs, false)
}

func (p *Program) run(ctx context.Context, inputs map[int]*Tensor, allNodes bool) (map[int]*Tensor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if testHookRunStart != nil {
		testHookRunStart(ctx, inputs)
	}
	if p.parts != nil {
		// allNodes has no meaning across targets (the deprecated one-shot
		// wrappers never build partitioned programs); the orchestrator
		// returns the graph outputs.
		return p.runPartitioned(ctx, inputs)
	}
	st := p.getState()
	defer p.pool.Put(st)
	m := p.img.Exec(st)
	if err := m.LoadInputs(inputs); err != nil {
		return nil, err
	}
	if err := m.RunBody(p.fr.Flow); err != nil {
		return nil, err
	}
	m.SettleAll()
	var out map[int]*Tensor
	if allNodes {
		out = m.Tensors()
	} else {
		out = m.TensorsOf(p.outs)
	}
	p.requests.Add(1)
	return out, nil
}

// getState draws a reset execution state from the pool, allocating when
// the pool is empty.
func (p *Program) getState() *funcsim.State {
	if v := p.pool.Get(); v != nil {
		p.poolHits.Add(1)
		st := v.(*funcsim.State)
		p.img.Reset(st)
		return st
	}
	p.poolMisses.Add(1)
	return p.img.NewState()
}

// RunBatch executes one inference per request map, returning results in
// request order. Same-shaped requests are grouped into micro-batches that
// execute on the batched kernel path — one pass over each programmed
// crossbar serves the whole micro-batch — distributed across a bounded
// worker pool (WithWorkers, default GOMAXPROCS); ragged shapes, partitioned
// programs and singleton groups fall back to per-request execution. Batched
// and per-request execution are bit-identical.
//
// On failure the returned results are nil and the error names the failing
// request: the lowest-indexed request whose execution produced a genuine
// error, falling back to a request-indexed cancellation and only then to the
// bare context error. The first genuine error cancels the remaining
// requests.
func (p *Program) RunBatch(ctx context.Context, reqs []map[int]*Tensor) ([]map[int]*Tensor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Empty-batch path: honor the nil-results-on-error convention — a
	// pre-cancelled context must not hand back a non-nil result slice.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	outs := make([]map[int]*Tensor, len(reqs))
	if len(reqs) == 0 {
		return outs, nil
	}
	workers := p.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	items := p.batchItems(reqs, workers)
	if items == nil && workers == 1 {
		// Inline fast path: no worker goroutines, no cancel machinery.
		// Request-major order also keeps each request's execution state hot
		// through the whole flow, which measures faster than op-major fused
		// interpretation on cache-resident models.
		for i, req := range reqs {
			out, err := p.Run(ctx, req)
			if err != nil {
				return nil, fmt.Errorf("cimmlc: RunBatch: request %d: %w", i, err)
			}
			outs[i] = out
		}
		return outs, nil
	}
	if items == nil {
		// Per-request fallback: one work item per request.
		items = make([][]int, len(reqs))
		for i := range reqs {
			items[i] = []int{i}
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	rec := &batchErrors{cancel: cancel}

	runItem := func(item []int) {
		if len(item) == 1 {
			i := item[0]
			if testHookBatchClaim != nil {
				testHookBatchClaim(i)
			}
			out, err := p.Run(ctx, reqs[i])
			if err != nil {
				rec.record(i, err)
				return
			}
			outs[i] = out
			return
		}
		if i, err := p.runMicroBatch(ctx, reqs, item, outs); err != nil {
			rec.record(i, err)
		}
	}

	if w := min(workers, len(items)); w == 1 {
		for _, item := range items {
			if ctx.Err() != nil {
				break
			}
			runItem(item)
			if rec.failed() {
				break
			}
		}
	} else {
		var (
			next atomic.Int64
			wg   sync.WaitGroup
		)
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(items) || ctx.Err() != nil {
						return
					}
					runItem(items[i])
				}
			}()
		}
		wg.Wait()
	}
	if err := rec.resolve(ctx); err != nil {
		return nil, err
	}
	return outs, nil
}

// batchErrors aggregates per-request failures of one RunBatch call. Genuine
// request errors take precedence over cancellation-flavored ones regardless
// of arrival order, so a caller always receives the request-indexed error
// when one exists — never a bare context.Canceled that happened to be
// observed first by another worker.
type batchErrors struct {
	cancel context.CancelFunc

	mu        sync.Mutex
	err       error // lowest-indexed genuine request error
	errIdx    int
	cancelErr error // lowest-indexed cancellation-flavored request error
	cancelIdx int
}

func (e *batchErrors) record(i int, err error) {
	wrapped := fmt.Errorf("cimmlc: RunBatch: request %d: %w", i, err)
	e.mu.Lock()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// The request observed the batch's cancellation; it did not cause
		// the failure. Keep it only as a fallback attribution.
		if e.cancelErr == nil || i < e.cancelIdx {
			e.cancelErr, e.cancelIdx = wrapped, i
		}
	} else {
		if e.err == nil || i < e.errIdx {
			e.err, e.errIdx = wrapped, i
		}
		e.cancel()
	}
	e.mu.Unlock()
	if testHookBatchFail != nil {
		testHookBatchFail(i)
	}
}

func (e *batchErrors) failed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err != nil
}

// resolve picks the batch's error after all workers have joined (no
// locking needed: Wait establishes happens-before).
func (e *batchErrors) resolve(ctx context.Context) error {
	switch {
	case e.err != nil:
		return e.err
	case ctx.Err() != nil:
		if e.cancelErr != nil {
			return e.cancelErr
		}
		return ctx.Err()
	}
	return nil
}

// maxMicroBatchWords caps a micro-batch's total lane memory (words, ~8 MB)
// so the batch's activation working set stays cache-resident: per-request
// cost rises again once the lanes spill the last-level cache. Lanes beyond
// the cap split into further micro-batches.
const maxMicroBatchWords = int64(1) << 20

// batchItems groups the batch's request indices into work items for the
// batched path: maximal runs of same-shaped requests, chunked into
// micro-batches sized to keep every worker busy. It returns nil when the
// batched path does not apply (partitioned program, batching disabled, or
// no group of at least two same-shaped requests) — the caller then uses the
// per-request paths.
func (p *Program) batchItems(reqs []map[int]*Tensor, workers int) [][]int {
	if p.bflow == nil || p.parts != nil || len(reqs) < 2 {
		return nil
	}
	laneCap := int(min(64, max(1, maxMicroBatchWords/max(1, p.img.MemWords()))))
	if laneCap < 2 {
		return nil
	}
	// Group by input signature, preserving first-appearance order.
	sigOf := make([]string, len(reqs))
	groups := make(map[string][]int)
	var order []string
	for i, req := range reqs {
		s := requestSig(req)
		sigOf[i] = s
		if _, ok := groups[s]; !ok {
			order = append(order, s)
		}
		groups[s] = append(groups[s], i)
	}
	batched := false
	var items [][]int
	for _, s := range order {
		g := groups[s]
		// Micro-batch size: spread the group across the worker pool, capped
		// by the lane-memory budget. Groups that would yield single-lane
		// micro-batches run per-request instead.
		mb := (len(g) + workers - 1) / workers
		if mb > laneCap {
			mb = laneCap
		}
		if mb < 2 {
			for _, i := range g {
				items = append(items, []int{i})
			}
			continue
		}
		batched = true
		// Balance the chunks (16 lanes under a cap of 15 becomes 8+8, not
		// 15+1) so no micro-batch degenerates to a near-empty tail.
		chunks := (len(g) + mb - 1) / mb
		lo, rem := len(g)/chunks, len(g)%chunks
		for off, c := 0, 0; c < chunks; c++ {
			n := lo
			if c < rem {
				n++
			}
			items = append(items, g[off:off+n])
			off += n
		}
	}
	if !batched {
		return nil
	}
	return items
}

// requestSig canonicalizes a request's input schema (node IDs and shapes)
// for same-shape grouping.
func requestSig(req map[int]*Tensor) string {
	ids := make([]int, 0, len(req))
	for id := range req {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		t := req[id]
		if t == nil {
			fmt.Fprintf(&b, "%d:nil;", id)
			continue
		}
		fmt.Fprintf(&b, "%d:", id)
		for _, d := range t.Shape() {
			fmt.Fprintf(&b, "%dx", d)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// runMicroBatch executes one micro-batch of same-shaped requests through the
// precompiled kernels. On failure it attributes the error to a request: lane
// loading errors are already indexed; a kernel error triggers a per-request
// re-run of the micro-batch so the offending request (and its exact error)
// is the one reported.
func (p *Program) runMicroBatch(ctx context.Context, reqs []map[int]*Tensor, idxs []int, outs []map[int]*Tensor) (int, error) {
	st := p.getBatchState(len(idxs))
	defer p.bpool.Put(st)
	bm := p.img.ExecBatch(st)
	for lane, ri := range idxs {
		if err := bm.LoadInputs(lane, reqs[ri]); err != nil {
			return ri, err
		}
	}
	if err := ctx.Err(); err != nil {
		return idxs[0], err
	}
	if err := bm.RunBody(p.bflow); err != nil {
		for _, ri := range idxs {
			if _, rerr := p.Run(ctx, reqs[ri]); rerr != nil {
				return ri, rerr
			}
		}
		return idxs[0], err
	}
	bm.SettleAll()
	for lane, ri := range idxs {
		outs[ri] = bm.TensorsOf(lane, p.outs)
	}
	p.batchRuns.Add(1)
	p.batchReqs.Add(uint64(len(idxs)))
	p.requests.Add(uint64(len(idxs)))
	return -1, nil
}

// getBatchState draws a reset micro-batch state from the pool, allocating
// when the pool is empty.
func (p *Program) getBatchState(lanes int) *funcsim.BatchState {
	if v := p.bpool.Get(); v != nil {
		st := v.(*funcsim.BatchState)
		p.img.ResetBatch(st, lanes)
		return st
	}
	return p.img.NewBatchState(lanes)
}

// Verify checks the program's execution of inputs bit-exactly against the
// quantized reference executor (under the program's build-time calibration)
// and within floatTol of the float reference.
func (p *Program) Verify(ctx context.Context, inputs map[int]*Tensor, floatTol float64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.parts != nil {
		return p.verifyPartitioned(ctx, inputs, floatTol)
	}
	got, err := p.run(ctx, inputs, true)
	if err != nil {
		return err
	}
	// The reference paths re-run shape inference, so give them a private
	// clone: p.g is shared by concurrent Run calls.
	gc := p.g.Clone()
	a := p.arch
	want, err := funcsim.QuantReferenceCalib(gc, &a, p.w, p.calib, inputs)
	if err != nil {
		return err
	}
	ref, err := graph.Execute(gc, p.w, inputs)
	if err != nil {
		return err
	}
	return funcsim.CheckOutputs(gc, got, want, ref, floatTol)
}

// Stats returns a snapshot of the program's serving counters.
func (p *Program) Stats() ProgramStats {
	st := ProgramStats{
		Requests:        p.requests.Load(),
		PoolHits:        p.poolHits.Load(),
		PoolMisses:      p.poolMisses.Load(),
		BatchRuns:       p.batchRuns.Load(),
		BatchedRequests: p.batchReqs.Load(),
	}
	if p.res != nil {
		st.Tuning = p.res.Tuning
		if p.res.Partition != nil {
			st.Partition = partitionStats(p.res)
		}
	}
	return st
}

// Result returns the compilation result the program was built from
// (schedule, placement, performance report). Nil for programs created by
// the deprecated one-shot Run/Verify wrappers.
func (p *Program) Result() *Result { return p.res }

// Flow returns the program's generated meta-operator flow and buffer
// layout. Treat it as read-only.
func (p *Program) Flow() *FlowResult { return p.fr }

// Arch returns a copy of the architecture the program was built for.
func (p *Program) Arch() *Arch {
	a := p.arch
	return &a
}

// Inputs returns the graph's input node IDs mapped to their tensor shapes —
// the request schema a serving front end needs to admit and validate
// traffic. The shape slices are copies.
func (p *Program) Inputs() map[int][]int {
	ins := make(map[int][]int)
	for _, id := range p.g.InputIDs() {
		n := p.g.MustNode(id)
		s := make([]int, len(n.OutShape))
		copy(s, n.OutShape)
		ins[id] = s
	}
	return ins
}

// Outputs returns the graph's output node IDs — the keys of the map Run
// returns.
func (p *Program) Outputs() []int {
	out := make([]int, len(p.outs))
	copy(out, p.outs)
	return out
}
