package cimmlc

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cimmlc/internal/funcsim"
	"cimmlc/internal/graph"
	"cimmlc/internal/tensor"
)

// Program is an executable, immutable compilation artifact: the
// shape-inferred graph, the optimized schedule, the generated meta-operator
// flow, and a crossbar image with the weights already quantized, bit-sliced
// and programmed. Building a Program pays the full compile + lower +
// weight-programming cost exactly once; each Run then executes only the
// flow's compute section against a pooled per-request execution state, the
// stationary-weight serving model CIM hardware is built for.
//
// A Program is safe for concurrent use from many goroutines.
type Program struct {
	arch  Arch // private copy, never mutated
	g     *Graph
	res   *Result
	fr    *FlowResult
	w     Weights
	calib map[int]*Tensor
	img   *funcsim.Image
	outs  []int // the graph's output node IDs

	// parts is non-nil for partitioned (multi-target) programs: the
	// subprograms in execution order. img and fr are then nil — Run
	// orchestrates the parts through a shared tensor environment instead of
	// executing a single flow.
	parts []*subprogram

	workers int

	pool       sync.Pool // of *funcsim.State
	requests   atomic.Uint64
	poolHits   atomic.Uint64
	poolMisses atomic.Uint64
}

// ProgramStats reports a program's serving counters.
type ProgramStats struct {
	// Requests is the number of successfully completed Run calls.
	Requests uint64
	// PoolHits counts runs that reused a pooled execution state;
	// PoolMisses counts runs that had to allocate a fresh one.
	PoolHits   uint64
	PoolMisses uint64
	// Tuning reports the autotune search the program's schedule came from
	// (tuned vs heuristic cycles); nil when the program was compiled without
	// WithAutoTune. Treat it as read-only.
	Tuning *TuningStats
	// Partition summarizes the multi-target plan for partitioned programs
	// (host fallback on a graph with host-only operators); nil for
	// monolithic programs, including fully supported graphs compiled under
	// WithHostFallback.
	Partition *PartitionStats
}

// BuildOption configures Compiler.Build.
type BuildOption func(*buildConfig)

type buildConfig struct {
	calib   map[int]*Tensor
	workers int
}

// WithCalibration supplies the activation-calibration inputs used to fix
// the program's quantization scales at build time. Calibration inputs
// should be drawn from the same distribution as serving traffic; when
// omitted, Build calibrates on deterministic pseudo-random inputs.
func WithCalibration(inputs map[int]*Tensor) BuildOption {
	return func(c *buildConfig) { c.calib = inputs }
}

// WithWorkers bounds RunBatch's worker pool; n <= 0 (the default) uses
// GOMAXPROCS.
func WithWorkers(n int) BuildOption {
	return func(c *buildConfig) { c.workers = n }
}

// Build compiles g once for serving: it runs the full pass pipeline
// (through the compiler's artifact cache), lowers the result to a
// meta-operator flow, calibrates quantization, and programs the flow's
// init section into an immutable crossbar image. The returned Program
// serves any number of Run / RunBatch calls without recompiling or
// reprogramming weights.
//
// The graph, weights and calibration tensors must not be mutated after
// Build returns.
func (c *Compiler) Build(ctx context.Context, g *Graph, w Weights, opt CodegenOptions, bopts ...BuildOption) (*Program, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if g == nil {
		return nil, fmt.Errorf("cimmlc: Build: nil graph")
	}
	var cfg buildConfig
	for _, o := range bopts {
		if o != nil {
			o(&cfg)
		}
	}
	res, err := c.Compile(ctx, g)
	if err != nil {
		return nil, err
	}
	if res.Partition != nil {
		return c.buildPartitioned(ctx, res, w, opt, cfg)
	}
	fr, err := c.Lower(ctx, g, res, opt)
	if err != nil {
		return nil, err
	}
	p, err := c.newProgram(g, fr, w, cfg)
	if err != nil {
		return nil, fmt.Errorf("cimmlc: Build: %w", err)
	}
	p.res = res
	return p, nil
}

// newProgram assembles a Program around an already-lowered flow: it clones
// and shape-infers the graph, calibrates an image, and programs the flow's
// init section. Shared by Build and the one-shot Run/Verify wrappers.
func (c *Compiler) newProgram(g *Graph, fr *FlowResult, w Weights, cfg buildConfig) (*Program, error) {
	if fr == nil || fr.Flow == nil || fr.Layout == nil {
		return nil, fmt.Errorf("nil flow result")
	}
	if fr.Truncated {
		return nil, fmt.Errorf("flow was truncated by codegen (MaxWindowsPerOp); not executable")
	}
	// Validate once here: per-request execution (RunBody) skips it.
	if err := fr.Flow.Validate(); err != nil {
		return nil, err
	}
	gc, err := cloneGraph(g)
	if err != nil {
		return nil, err
	}
	calib := cfg.calib
	if calib == nil {
		calib = defaultCalibration(gc)
	}
	p := &Program{
		arch:    c.arch,
		g:       gc,
		fr:      fr,
		w:       w,
		calib:   calib,
		outs:    gc.Outputs(),
		workers: cfg.workers,
	}
	img, err := funcsim.NewImage(gc, &p.arch, fr.Layout, w, calib)
	if err != nil {
		return nil, err
	}
	if err := img.ProgramInit(fr.Flow.Init); err != nil {
		return nil, err
	}
	p.img = img
	return p, nil
}

// defaultCalibration generates deterministic pseudo-random inputs for every
// Input node, giving the quantizers a symmetric activation range when the
// caller has no calibration set.
func defaultCalibration(g *Graph) map[int]*Tensor {
	calib := map[int]*Tensor{}
	for _, id := range g.InputIDs() {
		n := g.MustNode(id)
		t := tensor.New(n.OutShape...)
		t.Rand(0x9e3779b97f4a7c15^uint64(id), 1)
		calib[id] = t
	}
	return calib
}

// Run executes one inference: inputs are quantized with the program's
// calibrated scales, the flow's compute section runs against a pooled
// execution state, and the tensors of the graph's output nodes are
// returned, keyed by node ID. (The deprecated Compiler.Run returns every
// node's tensor; serving extracts only the network outputs.) Safe for
// concurrent use.
func (p *Program) Run(ctx context.Context, inputs map[int]*Tensor) (map[int]*Tensor, error) {
	return p.run(ctx, inputs, false)
}

func (p *Program) run(ctx context.Context, inputs map[int]*Tensor, allNodes bool) (map[int]*Tensor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.parts != nil {
		// allNodes has no meaning across targets (the deprecated one-shot
		// wrappers never build partitioned programs); the orchestrator
		// returns the graph outputs.
		return p.runPartitioned(ctx, inputs)
	}
	st := p.getState()
	defer p.pool.Put(st)
	m := p.img.Exec(st)
	if err := m.LoadInputs(inputs); err != nil {
		return nil, err
	}
	if err := m.RunBody(p.fr.Flow); err != nil {
		return nil, err
	}
	m.SettleAll()
	var out map[int]*Tensor
	if allNodes {
		out = m.Tensors()
	} else {
		out = m.TensorsOf(p.outs)
	}
	p.requests.Add(1)
	return out, nil
}

// getState draws a reset execution state from the pool, allocating when
// the pool is empty.
func (p *Program) getState() *funcsim.State {
	if v := p.pool.Get(); v != nil {
		p.poolHits.Add(1)
		st := v.(*funcsim.State)
		p.img.Reset(st)
		return st
	}
	p.poolMisses.Add(1)
	return p.img.NewState()
}

// RunBatch executes one inference per request map, fanning the requests
// across a bounded worker pool (WithWorkers, default GOMAXPROCS). Results
// are returned in request order. The first error cancels the remaining
// requests and is returned; partial results are discarded.
func (p *Program) RunBatch(ctx context.Context, reqs []map[int]*Tensor) ([]map[int]*Tensor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	outs := make([]map[int]*Tensor, len(reqs))
	if len(reqs) == 0 {
		return outs, ctx.Err()
	}
	workers := p.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers == 1 {
		// Inline fast path: no worker goroutines, no cancel machinery.
		// Request-major order also keeps each request's execution state hot
		// through the whole flow, which measures faster than op-major fused
		// interpretation on cache-resident models.
		for i, req := range reqs {
			out, err := p.Run(ctx, req)
			if err != nil {
				return nil, fmt.Errorf("cimmlc: RunBatch: request %d: %w", i, err)
			}
			outs[i] = out
		}
		return outs, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) || ctx.Err() != nil {
					return
				}
				out, err := p.Run(ctx, reqs[i])
				if err != nil {
					fail(fmt.Errorf("cimmlc: RunBatch: request %d: %w", i, err))
					return
				}
				outs[i] = out
			}
		}()
	}
	wg.Wait()
	if firstErr == nil {
		// Workers exit silently when the parent context is cancelled;
		// surface that as the batch error.
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return outs, nil
}

// Verify checks the program's execution of inputs bit-exactly against the
// quantized reference executor (under the program's build-time calibration)
// and within floatTol of the float reference.
func (p *Program) Verify(ctx context.Context, inputs map[int]*Tensor, floatTol float64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.parts != nil {
		return p.verifyPartitioned(ctx, inputs, floatTol)
	}
	got, err := p.run(ctx, inputs, true)
	if err != nil {
		return err
	}
	// The reference paths re-run shape inference, so give them a private
	// clone: p.g is shared by concurrent Run calls.
	gc := p.g.Clone()
	a := p.arch
	want, err := funcsim.QuantReferenceCalib(gc, &a, p.w, p.calib, inputs)
	if err != nil {
		return err
	}
	ref, err := graph.Execute(gc, p.w, inputs)
	if err != nil {
		return err
	}
	return funcsim.CheckOutputs(gc, got, want, ref, floatTol)
}

// Stats returns a snapshot of the program's serving counters.
func (p *Program) Stats() ProgramStats {
	st := ProgramStats{
		Requests:   p.requests.Load(),
		PoolHits:   p.poolHits.Load(),
		PoolMisses: p.poolMisses.Load(),
	}
	if p.res != nil {
		st.Tuning = p.res.Tuning
		if p.res.Partition != nil {
			st.Partition = partitionStats(p.res)
		}
	}
	return st
}

// Result returns the compilation result the program was built from
// (schedule, placement, performance report). Nil for programs created by
// the deprecated one-shot Run/Verify wrappers.
func (p *Program) Result() *Result { return p.res }

// Flow returns the program's generated meta-operator flow and buffer
// layout. Treat it as read-only.
func (p *Program) Flow() *FlowResult { return p.fr }

// Arch returns a copy of the architecture the program was built for.
func (p *Program) Arch() *Arch {
	a := p.arch
	return &a
}

// Inputs returns the graph's input node IDs mapped to their tensor shapes —
// the request schema a serving front end needs to admit and validate
// traffic. The shape slices are copies.
func (p *Program) Inputs() map[int][]int {
	ins := make(map[int][]int)
	for _, id := range p.g.InputIDs() {
		n := p.g.MustNode(id)
		s := make([]int, len(n.OutShape))
		copy(s, n.OutShape)
		ins[id] = s
	}
	return ins
}

// Outputs returns the graph's output node IDs — the keys of the map Run
// returns.
func (p *Program) Outputs() []int {
	out := make([]int, len(p.outs))
	copy(out, p.outs)
	return out
}
