package cimmlc

import (
	"context"
	"testing"
)

// TestWithAutoTunePublicAPI exercises the autotuner through the public
// Compiler: tuning record present, never-worse latency, and artifact-cache
// reuse keyed by the budget.
func TestWithAutoTunePublicAPI(t *testing.T) {
	ctx := context.Background()
	g, err := Model("mlp")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Preset("isaac-baseline")
	if err != nil {
		t.Fatal(err)
	}
	a.Mode = WLM

	plain, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	href, err := plain.Compile(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if href.Tuning != nil {
		t.Error("untuned compilation carries a tuning record")
	}

	tuned, err := New(a, WithAutoTune(Budget{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuned.Compile(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Tuning
	if st == nil {
		t.Fatal("tuned compilation has no tuning record")
	}
	if st.HeuristicCycles != href.Report.Cycles {
		t.Errorf("tuning record heuristic cycles %v != untuned compile %v", st.HeuristicCycles, href.Report.Cycles)
	}
	if res.Report.Cycles > href.Report.Cycles {
		t.Errorf("tuned latency %v exceeds heuristic %v", res.Report.Cycles, href.Report.Cycles)
	}
	if res.Report.Cycles != st.TunedCycles {
		t.Errorf("final report %v != tuning record %v", res.Report.Cycles, st.TunedCycles)
	}

	// Memoized: the second compile of the same graph is a cache hit
	// returning the same result.
	res2, err := tuned.Compile(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res {
		t.Error("tuned recompile missed the artifact cache")
	}
	if s := tuned.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("cache stats %+v, want 1 hit / 1 miss", s)
	}

	// Same budget in a fresh compiler reproduces the same schedule;
	// Workers never changes the outcome or the cache key.
	again, err := New(a, WithAutoTune(Budget{Workers: 7}))
	if err != nil {
		t.Fatal(err)
	}
	res3, err := again.Compile(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Schedule.Fingerprint() != res.Schedule.Fingerprint() {
		t.Errorf("same-budget recompile chose schedule %s, want %s", res3.Schedule.Fingerprint(), res.Schedule.Fingerprint())
	}
}

// TestAutoTuneRespectsDisabledOptimizations checks the tuner never
// re-enables a technique the user explicitly turned off: with remapping
// disabled no tuned schedule may remap, and with pipelining disabled the
// pipeline stays off.
func TestAutoTuneRespectsDisabledOptimizations(t *testing.T) {
	ctx := context.Background()
	g, err := Model("mlp")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Preset("isaac-baseline")
	if err != nil {
		t.Fatal(err)
	}
	a.Mode = WLM

	noRemap, err := New(a, WithoutRemap(), WithAutoTune(Budget{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := noRemap.Compile(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	for id, m := range res.Schedule.Remap {
		if m > 1 {
			t.Errorf("WithoutRemap but tuned schedule remaps node %d by %d (moves: %v)", id, m, res.Tuning.Moves)
		}
	}

	noPipe, err := New(a, WithoutPipeline(), WithAutoTune(Budget{}))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := noPipe.Compile(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Schedule.Pipeline {
		t.Errorf("WithoutPipeline but tuned schedule pipelines (moves: %v)", res2.Tuning.Moves)
	}
}

// TestAutoTuneProgramStats checks Build on a tuned compiler surfaces the
// tuning record through ProgramStats and preserves output verification.
func TestAutoTuneProgramStats(t *testing.T) {
	ctx := context.Background()
	g, err := Model("conv-relu")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Preset("toy-table2")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(a, WithAutoTune(Budget{MaxCandidates: 16}))
	if err != nil {
		t.Fatal(err)
	}
	w := RandomWeights(g, 1)
	in := map[int]*Tensor{}
	for _, id := range g.InputIDs() {
		tns := NewTensor(g.MustNode(id).OutShape...)
		tns.Rand(7, 1)
		in[id] = tns
	}
	p, err := c.Build(ctx, g, w, CodegenOptions{}, WithCalibration(in))
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Tuning == nil {
		t.Fatal("tuned program reports no tuning record")
	}
	if st.Tuning.TunedCycles > st.Tuning.HeuristicCycles {
		t.Errorf("tuned %v > heuristic %v", st.Tuning.TunedCycles, st.Tuning.HeuristicCycles)
	}
	if err := p.Verify(ctx, in, 0.05); err != nil {
		t.Errorf("tuned program fails verification: %v", err)
	}
}
