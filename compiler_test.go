package cimmlc

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestCompilerMatchesLegacy checks the acceptance criterion of the API
// redesign: New(arch).Compile produces the same Schedule and Report as the
// legacy free-function path for every preset × several zoo models.
func TestCompilerMatchesLegacy(t *testing.T) {
	zoo := []string{"conv-relu", "lenet5", "resnet18"}
	for _, pname := range Presets() {
		for _, mname := range zoo {
			t.Run(pname+"/"+mname, func(t *testing.T) {
				a, err := Preset(pname)
				if err != nil {
					t.Fatal(err)
				}
				g1, err := Model(mname)
				if err != nil {
					t.Fatal(err)
				}
				g2, err := Model(mname)
				if err != nil {
					t.Fatal(err)
				}
				legacy, legacyErr := Compile(g1, a, Options{})
				c, err := New(a)
				if err != nil {
					t.Fatal(err)
				}
				res, resErr := c.Compile(context.Background(), g2)
				if (legacyErr != nil) != (resErr != nil) {
					t.Fatalf("error mismatch: legacy=%v compiler=%v", legacyErr, resErr)
				}
				if legacyErr != nil {
					t.Skipf("model does not compile on this preset: %v", legacyErr)
				}
				if !reflect.DeepEqual(legacy.Report, res.Report) {
					t.Errorf("reports differ: legacy %+v vs compiler %+v", legacy.Report, res.Report)
				}
				ls, ns := legacy.Schedule, res.Schedule
				if !reflect.DeepEqual(ls.Dup, ns.Dup) || !reflect.DeepEqual(ls.Remap, ns.Remap) ||
					!reflect.DeepEqual(ls.Segments, ns.Segments) || !reflect.DeepEqual(ls.Levels, ns.Levels) ||
					ls.Pipeline != ns.Pipeline || ls.Stagger != ns.Stagger {
					t.Errorf("schedules differ:\nlegacy dup=%v remap=%v segs=%v levels=%v pipe=%v stag=%v\nnew    dup=%v remap=%v segs=%v levels=%v pipe=%v stag=%v",
						ls.Dup, ls.Remap, ls.Segments, ls.Levels, ls.Pipeline, ls.Stagger,
						ns.Dup, ns.Remap, ns.Segments, ns.Levels, ns.Pipeline, ns.Stagger)
				}
				if !reflect.DeepEqual(legacy.Placement.Tiles, res.Placement.Tiles) {
					t.Errorf("placements differ: %d vs %d tiles", len(legacy.Placement.Tiles), len(res.Placement.Tiles))
				}
			})
		}
	}
}

// TestCompilerConcurrent hammers one Compiler from many goroutines sharing
// the same Graph value; run under -race this verifies the concurrency-safety
// contract.
func TestCompilerConcurrent(t *testing.T) {
	a, err := Preset("toy-table2")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Model("conv-relu")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Model("mlp")
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := g
			if i%4 == 3 {
				in = g2 // mix a second model into the traffic
			}
			results[i], errs[i] = c.Compile(context.Background(), in)
		}(i)
	}
	wg.Wait()

	var ref *Result
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		if i%4 == 3 {
			continue
		}
		if ref == nil {
			ref = results[i]
			continue
		}
		if !reflect.DeepEqual(ref.Report, results[i].Report) {
			t.Fatalf("worker %d produced a different report", i)
		}
	}
	st := c.Stats()
	if st.Hits+st.Misses != workers {
		t.Fatalf("stats account for %d compiles, want %d (%+v)", st.Hits+st.Misses, workers, st)
	}
	if st.Misses < 2 || st.Entries < 1 {
		t.Fatalf("unexpected cache accounting: %+v", st)
	}
}

func TestCompilerCache(t *testing.T) {
	a, err := Preset("toy-table2")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	g, err := Model("conv-relu")
	if err != nil {
		t.Fatal(err)
	}

	r1, err := c.Compile(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Compile(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("second identical compile not served from the cache")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Capacity != DefaultCacheSize {
		t.Fatalf("stats after hit = %+v", st)
	}

	// A structurally identical graph built separately also hits (the key is
	// a content fingerprint, not a pointer).
	g2, err := Model("conv-relu")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile(ctx, g2); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 2 {
		t.Fatalf("fingerprint-equal graph missed the cache: %+v", st)
	}

	// A different model misses.
	g3, err := Model("mlp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile(ctx, g3); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats after second model = %+v", st)
	}
}

func TestCompilerCacheDisabledAndEviction(t *testing.T) {
	a, err := Preset("toy-table2")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	g, err := Model("conv-relu")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Model("mlp")
	if err != nil {
		t.Fatal(err)
	}

	off, err := New(a, WithCache(0))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := off.Compile(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := off.Compile(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Fatal("WithCache(0) still memoized")
	}
	if st := off.Stats(); st.Hits != 0 || st.Misses != 2 || st.Entries != 0 || st.Capacity != 0 {
		t.Fatalf("stats with cache off = %+v", st)
	}

	one, err := New(a, WithCache(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Graph{g, g2, g} { // g evicted by g2, then recompiled
		if _, err := one.Compile(ctx, m); err != nil {
			t.Fatal(err)
		}
	}
	if st := one.Stats(); st.Evictions != 2 || st.Misses != 3 || st.Entries != 1 {
		t.Fatalf("stats with capacity 1 = %+v", st)
	}
}

// cancelPass cancels its context the first time it runs, simulating a
// deadline landing mid-compile.
type cancelPass struct{ cancel context.CancelFunc }

func (cancelPass) Name() string                              { return "test-cancel" }
func (cancelPass) Applicable(Mode) bool                      { return true }
func (p cancelPass) Run(context.Context, *PassContext) error { p.cancel(); return nil }

func TestCompilerContextCancellation(t *testing.T) {
	a, err := Preset("isaac-baseline")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Model("lenet5")
	if err != nil {
		t.Fatal(err)
	}

	// Already-cancelled context: rejected before any work.
	c, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Compile(cancelled, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled compile returned %v", err)
	}

	// Cancellation mid-compile: a pass inserted after CG cancels, and the
	// pipeline stops before the MVM phase.
	ctx, cancelMid := context.WithCancel(context.Background())
	defer cancelMid()
	mid, err := New(a, WithPass(PassCG, cancelPass{cancel: cancelMid}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = mid.Compile(ctx, g)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-compile cancellation returned %v", err)
	}
	if !strings.Contains(err.Error(), PassMVM) {
		t.Fatalf("expected cancellation before %s, got: %v", PassMVM, err)
	}
}

// observerPass records the schedule state it sees, to verify user passes
// run at their declared slot between the built-in phases.
type observerPass struct {
	mu     sync.Mutex
	levels [][]string
}

func (*observerPass) Name() string         { return "test-observe" }
func (*observerPass) Applicable(Mode) bool { return true }
func (p *observerPass) Run(_ context.Context, pc *PassContext) error {
	if pc.Schedule == nil {
		return fmt.Errorf("no schedule at observation point")
	}
	p.mu.Lock()
	p.levels = append(p.levels, append([]string(nil), pc.Schedule.Levels...))
	p.mu.Unlock()
	return nil
}

func TestCompilerCustomPassBetweenMVMAndVVM(t *testing.T) {
	a, err := Preset("isaac-baseline")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Model("lenet5")
	if err != nil {
		t.Fatal(err)
	}
	obs := &observerPass{}
	c, err := New(a, WithPass(PassMVM, obs))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Compile(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.levels) != 1 || !reflect.DeepEqual(obs.levels[0], []string{"CG", "MVM"}) {
		t.Fatalf("observer saw levels %v, want one observation of [CG MVM]", obs.levels)
	}
	if !reflect.DeepEqual(res.Schedule.Levels, []string{"CG", "MVM", "VVM"}) {
		t.Fatalf("final levels = %v", res.Schedule.Levels)
	}

	// The observer must not run again on a cache hit.
	if _, err := c.Compile(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if len(obs.levels) != 1 {
		t.Fatalf("custom pass ran %d times despite cache hit", len(obs.levels))
	}
}

func TestCompilerOptionValidation(t *testing.T) {
	a, err := Preset("toy-table2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil); err == nil {
		t.Fatal("accepted nil arch")
	}
	if _, err := New(a, WithMaxLevel("bogus")); err == nil {
		t.Fatal("accepted invalid max level")
	}
	if _, err := New(a, WithAllocator("waterfil")); err == nil {
		t.Fatal("accepted unknown allocator")
	}
	if _, err := New(a, WithAllocator(AllocWaterfill)); err != nil {
		t.Fatalf("rejected valid allocator: %v", err)
	}
	if _, err := New(a, WithPass("no-such-pass", &observerPass{})); err == nil {
		t.Fatal("accepted unknown pass anchor")
	}
	if _, err := New(a, WithPass("", nil)); err == nil {
		t.Fatal("accepted nil pass")
	}
	if _, err := New(a, WithPass("", shadowPass{})); err == nil {
		t.Fatal("accepted pass shadowing a built-in name")
	}
	// Two distinct passes under one name would collide in the artifact
	// cache (optionFingerprint folds pass names only), so New rejects
	// duplicates even at different anchors.
	if _, err := New(a,
		WithPass(PassCG, &observerPass{}),
		WithPass(PassMVM, &observerPass{}),
	); err == nil {
		t.Fatal("accepted duplicate user pass names")
	}
}

// TestDeprecatedWrapperTolerance pins the compatibility contract of the
// deprecated free functions: invalid Options values the old implementation
// silently ignored must still compile (New rejects them for new code), and
// nil graphs error instead of panicking across the Compiler surface.
func TestDeprecatedWrapperTolerance(t *testing.T) {
	a, err := Preset("puma")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Model("lenet5")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(g, a, Options{MaxLevel: "xbm", Allocator: "greedy"})
	if err != nil {
		t.Fatalf("deprecated Compile rejected legacy-tolerated options: %v", err)
	}
	if res.Report.Cycles <= 0 {
		t.Fatal("no latency")
	}

	c, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Compile(ctx, nil); err == nil {
		t.Fatal("Compile accepted nil graph")
	}
	if _, err := c.Lower(ctx, nil, res, CodegenOptions{}); err == nil {
		t.Fatal("Lower accepted nil graph")
	}
	if _, err := c.Run(ctx, nil, nil, nil, nil); err == nil {
		t.Fatal("Run accepted nil graph")
	}
	if err := c.Verify(ctx, nil, nil, nil, nil, 0); err == nil {
		t.Fatal("Verify accepted nil graph")
	}
}

type shadowPass struct{}

func (shadowPass) Name() string                            { return PassCG }
func (shadowPass) Applicable(Mode) bool                    { return true }
func (shadowPass) Run(context.Context, *PassContext) error { return nil }

// TestCompilerEndToEnd drives the full Compiler surface — Compile, Lower,
// Verify, Run — as the quickstart does through the deprecated wrappers.
func TestCompilerEndToEnd(t *testing.T) {
	a, err := Preset("toy-table2")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	g, err := Model("conv-relu")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Compile(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := c.Lower(ctx, g, res, CodegenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := RandomWeights(g, 1)
	in := NewTensor(3, 32, 32)
	in.Rand(2, 1)
	if err := c.Verify(ctx, g, fr, w, map[int]*Tensor{0: in}, 0.05); err != nil {
		t.Fatal(err)
	}
	outs, err := c.Run(ctx, g, fr, w, map[int]*Tensor{0: in})
	if err != nil {
		t.Fatal(err)
	}
	if outs[g.Outputs()[0]].Len() != 32*32*32 {
		t.Fatal("wrong output size")
	}
}

// TestCompilerLowerRunConcurrent drives the whole Compile → Lower → Run
// surface from goroutines sharing one Graph value; under -race this verifies
// that no Compiler method writes to caller-owned graphs.
func TestCompilerLowerRunConcurrent(t *testing.T) {
	a, err := Preset("toy-table2")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Model("conv-relu")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := c.Compile(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	w := RandomWeights(g, 1)
	in := NewTensor(3, 32, 32)
	in.Rand(2, 1)

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 0 {
				_, errs[i] = c.Compile(ctx, g)
				return
			}
			fr, err := c.Lower(ctx, g, res, CodegenOptions{})
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = c.Run(ctx, g, fr, w, map[int]*Tensor{0: in})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

func TestLookupErrorsAndCaseInsensitivity(t *testing.T) {
	if _, err := Preset("ISAAC-Baseline"); err != nil {
		t.Fatalf("case-insensitive preset lookup failed: %v", err)
	}
	if _, err := Model("ResNet18"); err != nil {
		t.Fatalf("case-insensitive model lookup failed: %v", err)
	}
	if _, err := Experiment("FIG16"); err != nil {
		t.Fatalf("case-insensitive experiment lookup failed: %v", err)
	}
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"preset", func() error { _, err := Preset("nope"); return err }()},
		{"model", func() error { _, err := Model("nope"); return err }()},
		{"experiment", func() error { _, err := Experiment("nope"); return err }()},
	} {
		if tc.err == nil {
			t.Fatalf("%s lookup accepted unknown name", tc.name)
		}
		if !strings.Contains(tc.err.Error(), `"nope"`) || !strings.Contains(tc.err.Error(), "available:") {
			t.Fatalf("%s lookup error not actionable: %v", tc.name, tc.err)
		}
	}
}

func TestCompilerTrace(t *testing.T) {
	a, err := Preset("jia-isscc21") // CM: MVM and VVM passes are skipped
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var ran, skipped []string
	c, err := New(a, WithTrace(func(ev TraceEvent) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Skipped {
			skipped = append(skipped, ev.Pass)
		} else {
			ran = append(ran, ev.Pass)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Model("lenet5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ran, []string{PassCG, PassPlace, PassSimulate}) {
		t.Fatalf("ran = %v", ran)
	}
	if !reflect.DeepEqual(skipped, []string{PassMVM, PassVVM}) {
		t.Fatalf("skipped = %v", skipped)
	}
	if _, err := c.Compile(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if ran[len(ran)-1] != "cache-hit" {
		t.Fatalf("cache hit not traced: %v", ran)
	}
}
