package cimmlc

import (
	"context"
	"fmt"
	"sync/atomic"

	"cimmlc/internal/graph"
	"cimmlc/internal/mapping"
	"cimmlc/internal/partition"
	"cimmlc/internal/perfsim"
	"cimmlc/internal/tensor"
)

// pipelineStage is one chip of a multi-chip Pipeline: a full inner Program
// (compiled, lowered and weight-programmed for that chip's slice of the
// model) plus the subgraph metadata mapping its local node IDs back into the
// full graph.
type pipelineStage struct {
	sub  *partition.Subgraph
	prog *Program
}

// Pipeline is a model compiled across several chips: the graph is cut into
// consecutive stages whose crossbar footprints each fit one chip under the
// stationary-weights constraint, and activations cross the chip-to-chip link
// at every cut. It is the escape hatch for models WithStationaryWeights
// rejects with ErrOverCapacity — too many weights for one chip, no
// reprogramming allowed — at the price of one chip-link transfer per cut
// edge per request.
//
// Run executes the stages in order on the calling goroutine. A serving fleet
// that owns one executor per chip instead drives RunStage concurrently —
// stage i of request k+1 overlapping stage i+1 of request k — using
// StageBoundary to route activations between the per-chip goroutines.
//
// A Pipeline is immutable after build and safe for concurrent use.
type Pipeline struct {
	arch   Arch
	g      *Graph // full graph clone, shape-inferred
	plan   *partition.Plan
	stages []*pipelineStage
	outs   []int

	requests atomic.Uint64
}

// PipelineStats summarizes a Pipeline's multi-chip plan and modelled costs.
type PipelineStats struct {
	// Stages is the chip count; StageCores and StageCycles give each
	// stage's crossbar-core footprint and modelled latency.
	Stages      int       `json:"stages"`
	StageCores  []int     `json:"stage_cores"`
	StageCycles []float64 `json:"stage_cycles"`
	// Transfers counts the cut edges crossing chip links; TransferElems
	// their total tensor element volume per request; TransferCycles the
	// modelled chip-link cost of moving them.
	Transfers      int     `json:"transfers"`
	TransferElems  int64   `json:"transfer_elems"`
	TransferCycles float64 `json:"transfer_cycles"`
	// Requests is the number of successfully completed Run calls (stage-wise
	// execution through RunStage counts on the final stage).
	Requests uint64 `json:"requests"`
}

// BuildPipeline compiles g across several chips of the compiler's
// architecture: the graph is split by partition.ChipStages into consecutive
// capacity-bounded stages, and every stage is compiled, lowered, calibrated
// and weight-programmed like a monolithic build. maxChips bounds the chip
// count when positive.
//
// Call it when Build fails with ErrOverCapacity under WithStationaryWeights;
// it also accepts models that fit one chip (yielding a single-stage
// pipeline). Graphs with host-only operators are rejected — cross-chip
// pipelining composes with pure-CIM models only.
func (c *Compiler) BuildPipeline(ctx context.Context, g *Graph, w Weights, opt CodegenOptions, maxChips int, bopts ...BuildOption) (*Pipeline, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if g == nil {
		return nil, fmt.Errorf("cimmlc: BuildPipeline: nil graph")
	}
	var cfg buildConfig
	for _, o := range bopts {
		if o != nil {
			o(&cfg)
		}
	}
	a := c.arch
	plan, err := partition.ChipStages(g, &a, maxChips)
	if err != nil {
		return nil, fmt.Errorf("cimmlc: BuildPipeline: %w", err)
	}

	calib := cfg.calib
	if calib == nil {
		calib = defaultCalibration(plan.Graph)
	}
	// Boundary calibration, as in the partitioned build: reference-execute
	// the full graph so each stage's synthetic inputs calibrate on the
	// activation distribution they will see at the chip boundary.
	refVals, err := graph.Execute(plan.Graph.Clone(), w, calib)
	if err != nil {
		return nil, fmt.Errorf("cimmlc: BuildPipeline: boundary calibration: %w", err)
	}

	pl := &Pipeline{
		arch: a,
		g:    plan.Graph,
		plan: plan,
		outs: plan.Graph.Outputs(),
	}
	for _, sub := range plan.Subs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		subCalib := make(map[int]*Tensor, len(sub.G.InputIDs()))
		for _, lid := range sub.G.InputIDs() {
			gid := sub.GlobalOf[lid]
			t, ok := refVals[gid]
			if !ok {
				return nil, fmt.Errorf("cimmlc: BuildPipeline: stage %d: no calibration activation for node %d", sub.Index, gid)
			}
			subCalib[lid] = t
		}
		res, err := c.Compile(ctx, sub.G)
		if err != nil {
			return nil, fmt.Errorf("cimmlc: BuildPipeline: stage %d: %w", sub.Index, err)
		}
		fr, err := c.Lower(ctx, sub.G, res, opt)
		if err != nil {
			return nil, fmt.Errorf("cimmlc: BuildPipeline: stage %d: %w", sub.Index, err)
		}
		subW := sub.SubWeights(w)
		// One chip executes serially: workers=1 regardless of cfg — the
		// pipeline's parallelism is across stages, not within one.
		ip, err := c.newProgram(sub.G, fr, subW, buildConfig{calib: subCalib, workers: 1, noBatch: cfg.noBatch})
		if err != nil {
			return nil, fmt.Errorf("cimmlc: BuildPipeline: stage %d: %w", sub.Index, err)
		}
		ip.res = res
		// The pipeline consumes the stage's exports, not the stage graph's
		// own terminal nodes.
		ip.outs = append([]int(nil), sub.Exports...)
		pl.stages = append(pl.stages, &pipelineStage{sub: sub, prog: ip})
	}
	return pl, nil
}

// Stages returns the pipeline's chip count.
func (pl *Pipeline) Stages() int { return len(pl.stages) }

// Inputs returns the full graph's input node IDs mapped to their tensor
// shapes — the request schema, identical to the single-chip Program's.
func (pl *Pipeline) Inputs() map[int][]int {
	ins := make(map[int][]int)
	for _, id := range pl.g.InputIDs() {
		n := pl.g.MustNode(id)
		s := make([]int, len(n.OutShape))
		copy(s, n.OutShape)
		ins[id] = s
	}
	return ins
}

// Outputs returns the full graph's output node IDs.
func (pl *Pipeline) Outputs() []int {
	out := make([]int, len(pl.outs))
	copy(out, pl.outs)
	return out
}

// StageBoundary returns stage i's data interface in global node IDs: needs
// lists the values the stage reads (graph inputs and earlier stages'
// exports), exports the values it publishes. A fleet routes activations
// between per-chip goroutines by these IDs.
func (pl *Pipeline) StageBoundary(i int) (needs, exports []int) {
	sub := pl.stages[i].sub
	for _, lid := range sub.G.InputIDs() {
		needs = append(needs, sub.GlobalOf[lid])
	}
	for _, lid := range sub.Exports {
		exports = append(exports, sub.GlobalOf[lid])
	}
	return needs, exports
}

// RunStage executes stage i against env, a tensor environment keyed by
// global node IDs that must hold every ID in the stage's needs list
// (StageBoundary). It returns the stage's exports keyed by global node ID,
// never touching env itself — safe for concurrent calls on different stages
// (the per-chip goroutines of a fleet) and on the same stage (one chip
// serving its state pool).
//
// Calling the final stage increments the pipeline's request counter.
func (pl *Pipeline) RunStage(ctx context.Context, i int, env map[int]*Tensor) (map[int]*Tensor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if i < 0 || i >= len(pl.stages) {
		return nil, fmt.Errorf("cimmlc: RunStage: stage %d out of range [0,%d)", i, len(pl.stages))
	}
	st := pl.stages[i]
	subIn := make(map[int]*Tensor, len(st.sub.G.InputIDs()))
	for _, lid := range st.sub.G.InputIDs() {
		gid := st.sub.GlobalOf[lid]
		t, ok := env[gid]
		if !ok {
			return nil, fmt.Errorf("cimmlc: RunStage: stage %d: boundary value of node %d not provided", i, gid)
		}
		subIn[lid] = t
	}
	out, err := st.prog.Run(ctx, subIn)
	if err != nil {
		return nil, fmt.Errorf("cimmlc: RunStage: stage %d: %w", i, err)
	}
	exports := make(map[int]*Tensor, len(st.sub.Exports))
	for _, lid := range st.sub.Exports {
		t, ok := out[lid]
		if !ok {
			return nil, fmt.Errorf("cimmlc: RunStage: stage %d: export %d missing from result", i, lid)
		}
		exports[st.sub.GlobalOf[lid]] = t
	}
	if i == len(pl.stages)-1 {
		pl.requests.Add(1)
	}
	return exports, nil
}

// Run executes one inference by stepping the stages in order on the calling
// goroutine, threading activations through a shared environment. Fleets
// overlap requests across stages with RunStage instead.
func (pl *Pipeline) Run(ctx context.Context, inputs map[int]*Tensor) (map[int]*Tensor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	env := make(map[int]*Tensor, len(pl.g.Nodes))
	for _, id := range pl.g.InputIDs() {
		t, ok := inputs[id]
		if !ok {
			return nil, fmt.Errorf("cimmlc: Run: no input tensor provided for node %d", id)
		}
		env[id] = t
	}
	for i := range pl.stages {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		exports, err := pl.RunStage(ctx, i, env)
		if err != nil {
			return nil, err
		}
		for gid, t := range exports {
			env[gid] = t
		}
	}
	outs := make(map[int]*Tensor, len(pl.outs))
	for _, id := range pl.outs {
		t, ok := env[id]
		if !ok {
			return nil, fmt.Errorf("cimmlc: Run: output node %d was never computed", id)
		}
		outs[id] = t
	}
	return outs, nil
}

// Verify checks the pipeline's execution of inputs against the float
// reference executor within floatTol (relative to each output's max
// magnitude). There is no single quantized reference across chips: every
// stage re-quantizes its boundary activations, so the bit-exact check of the
// monolithic Verify does not apply across cut edges.
func (pl *Pipeline) Verify(ctx context.Context, inputs map[int]*Tensor, floatTol float64) error {
	got, err := pl.Run(ctx, inputs)
	if err != nil {
		return err
	}
	ref, err := graph.Execute(pl.g.Clone(), pl.stagesWeights(), inputs)
	if err != nil {
		return err
	}
	for _, id := range pl.outs {
		scale := 0.0
		for _, v := range ref[id].Data() {
			a := float64(v)
			if a < 0 {
				a = -a
			}
			if a > scale {
				scale = a
			}
		}
		if scale == 0 {
			scale = 1
		}
		d, err := tensor.MaxAbsDiff(got[id], ref[id])
		if err != nil {
			return fmt.Errorf("cimmlc: Verify: output %d: %w", id, err)
		}
		if d > floatTol*scale {
			return fmt.Errorf("cimmlc: Verify: output %d diverges from float reference by %g (tol %g of max magnitude %g)", id, d, floatTol, scale)
		}
	}
	return nil
}

// stagesWeights reassembles the full-graph weight map from the stages'
// local ones.
func (pl *Pipeline) stagesWeights() Weights {
	w := Weights{}
	for _, st := range pl.stages {
		for _, gid := range st.sub.NodeIDs {
			if t, ok := st.prog.w[st.sub.LocalOf[gid]]; ok {
				w[gid] = t
			}
		}
	}
	return w
}

// Stats returns a snapshot of the pipeline's plan and serving counters.
func (pl *Pipeline) Stats() PipelineStats {
	st := PipelineStats{
		Stages:    len(pl.stages),
		Transfers: len(pl.plan.Transfers),
		Requests:  pl.requests.Load(),
	}
	for _, s := range pl.stages {
		cores := 0
		if fps, err := mapping.Footprints(s.sub.G.Clone(), &pl.arch); err == nil {
			for _, f := range fps {
				cores += f.CoresPerCopy
			}
		}
		st.StageCores = append(st.StageCores, cores)
		cycles := 0.0
		if s.prog.res != nil && s.prog.res.Report != nil {
			cycles = s.prog.res.Report.Cycles
		}
		st.StageCycles = append(st.StageCycles, cycles)
	}
	for _, t := range pl.plan.Transfers {
		st.TransferElems += t.Elems
		st.TransferCycles += perfsim.ChipTransferCost(&pl.arch, t.Elems)
	}
	return st
}

// Arch returns a copy of the architecture the pipeline was built for.
func (pl *Pipeline) Arch() *Arch {
	a := pl.arch
	return &a
}
