package cimmlc

import (
	"context"
	"fmt"

	"cimmlc/internal/graph"
	"cimmlc/internal/hostexec"
	"cimmlc/internal/partition"
	"cimmlc/internal/tensor"
)

// subprogram is one step of a partitioned Program: either a full inner CIM
// Program (compiled, lowered and weight-programmed like any monolithic
// build) or a host-executor program, plus the subgraph metadata that maps
// its local node IDs back into the full graph.
type subprogram struct {
	sub   *partition.Subgraph
	inner *Program          // CIM subgraphs
	host  *hostexec.Program // host subgraphs
}

// PartitionStats summarizes a partitioned program's multi-target plan and
// the modelled latency decomposition. Program.Stats reports it only for
// partitioned programs — monolithic builds (including fully supported graphs
// compiled under WithHostFallback) leave it nil.
type PartitionStats struct {
	// Subgraphs counts the partition's subgraphs; CIMNodes and HostNodes
	// the real graph nodes on each target.
	Subgraphs int `json:"subgraphs"`
	CIMNodes  int `json:"cim_nodes"`
	HostNodes int `json:"host_nodes"`
	// Transfers counts the cut edges; TransferElems their total tensor
	// element volume.
	Transfers     int   `json:"transfers"`
	TransferElems int64 `json:"transfer_elems"`
	// CIMCycles, HostCycles and TransferCycles decompose the aggregate
	// modelled latency (Result.Report.Cycles).
	CIMCycles      float64 `json:"cim_cycles"`
	HostCycles     float64 `json:"host_cycles"`
	TransferCycles float64 `json:"transfer_cycles"`
}

// buildPartitioned assembles the orchestrator Program for a partitioned
// compilation: every CIM subgraph becomes a full inner Program (lowered and
// weight-programmed through the normal path, calibrated on reference
// activations at its boundary), every host subgraph a host-executor program.
func (c *Compiler) buildPartitioned(ctx context.Context, res *Result, w Weights, opt CodegenOptions, cfg buildConfig) (*Program, error) {
	plan := res.Partition.Plan
	calib := cfg.calib
	if calib == nil {
		calib = defaultCalibration(plan.Graph)
	}
	// Boundary calibration: reference-execute the full graph on the
	// calibration set so each subgraph's synthetic inputs calibrate on the
	// activation distribution they will actually see. Execute re-runs shape
	// inference, so give it a private clone — plan.Graph may be shared
	// through the compiler's artifact cache.
	refVals, err := graph.Execute(plan.Graph.Clone(), w, calib)
	if err != nil {
		return nil, fmt.Errorf("cimmlc: Build: boundary calibration: %w", err)
	}

	p := &Program{
		arch:    c.arch,
		g:       plan.Graph,
		res:     res,
		w:       w,
		calib:   calib,
		outs:    plan.Graph.Outputs(),
		workers: cfg.workers,
	}
	for i, sub := range plan.Subs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		subW := sub.SubWeights(w)
		switch sub.Target {
		case graph.TargetHost:
			hp, err := hostexec.Compile(sub.G, subW)
			if err != nil {
				return nil, fmt.Errorf("cimmlc: Build: subgraph %d: %w", sub.Index, err)
			}
			p.parts = append(p.parts, &subprogram{sub: sub, host: hp})
		case graph.TargetCIM:
			subCalib := make(map[int]*Tensor, len(sub.G.InputIDs()))
			for _, lid := range sub.G.InputIDs() {
				gid := sub.GlobalOf[lid]
				t, ok := refVals[gid]
				if !ok {
					return nil, fmt.Errorf("cimmlc: Build: subgraph %d: no calibration activation for node %d", sub.Index, gid)
				}
				subCalib[lid] = t
			}
			sr := res.Partition.Subs[i]
			if sr.Res == nil {
				return nil, fmt.Errorf("cimmlc: Build: subgraph %d: missing CIM compilation result", sub.Index)
			}
			fr, err := c.Lower(ctx, sub.G, sr.Res, opt)
			if err != nil {
				return nil, fmt.Errorf("cimmlc: Build: subgraph %d: %w", sub.Index, err)
			}
			ip, err := c.newProgram(sub.G, fr, subW, buildConfig{calib: subCalib, workers: 1})
			if err != nil {
				return nil, fmt.Errorf("cimmlc: Build: subgraph %d: %w", sub.Index, err)
			}
			ip.res = sr.Res
			// The orchestrator consumes the subgraph's exports, not the
			// subgraph's own terminal nodes.
			ip.outs = append([]int(nil), sub.Exports...)
			p.parts = append(p.parts, &subprogram{sub: sub, inner: ip})
		default:
			return nil, fmt.Errorf("cimmlc: Build: subgraph %d has target %q", sub.Index, sub.Target)
		}
	}
	return p, nil
}

// runPartitioned executes one inference by stepping the subprograms in
// topological order through a shared tensor environment keyed by global node
// IDs: each subprogram reads its boundary inputs from the environment and
// publishes its exports back.
func (p *Program) runPartitioned(ctx context.Context, inputs map[int]*Tensor) (map[int]*Tensor, error) {
	env := make(map[int]*Tensor, len(p.g.Nodes))
	for _, id := range p.g.InputIDs() {
		t, ok := inputs[id]
		if !ok {
			return nil, fmt.Errorf("cimmlc: Run: no input tensor provided for node %d", id)
		}
		env[id] = t
	}
	for _, sp := range p.parts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		subIn := make(map[int]*Tensor)
		for _, lid := range sp.sub.G.InputIDs() {
			gid := sp.sub.GlobalOf[lid]
			t, ok := env[gid]
			if !ok {
				return nil, fmt.Errorf("cimmlc: Run: subgraph %d: boundary value of node %d not yet computed", sp.sub.Index, gid)
			}
			subIn[lid] = t
		}
		if sp.host != nil {
			vals, err := sp.host.Run(ctx, subIn)
			if err != nil {
				return nil, fmt.Errorf("cimmlc: Run: subgraph %d: %w", sp.sub.Index, err)
			}
			for _, lid := range sp.sub.Exports {
				env[sp.sub.GlobalOf[lid]] = vals[lid]
			}
			continue
		}
		out, err := sp.inner.Run(ctx, subIn)
		if err != nil {
			return nil, fmt.Errorf("cimmlc: Run: subgraph %d: %w", sp.sub.Index, err)
		}
		for _, lid := range sp.sub.Exports {
			t, ok := out[lid]
			if !ok {
				return nil, fmt.Errorf("cimmlc: Run: subgraph %d: export %d missing from result", sp.sub.Index, lid)
			}
			env[sp.sub.GlobalOf[lid]] = t
		}
	}
	outs := make(map[int]*Tensor, len(p.outs))
	for _, id := range p.outs {
		t, ok := env[id]
		if !ok {
			return nil, fmt.Errorf("cimmlc: Run: output node %d was never computed", id)
		}
		outs[id] = t
	}
	p.requests.Add(1)
	return outs, nil
}

// verifyPartitioned checks a partitioned program's outputs against the float
// reference executor within floatTol (relative to each output's max
// magnitude). Partitioned execution has no single quantized reference: host
// subgraphs compute in float32 where the monolithic pipeline would have
// quantized digital ops, so the bit-exact check of the monolithic Verify
// does not apply across cut edges.
func (p *Program) verifyPartitioned(ctx context.Context, inputs map[int]*Tensor, floatTol float64) error {
	got, err := p.runPartitioned(ctx, inputs)
	if err != nil {
		return err
	}
	ref, err := graph.Execute(p.g.Clone(), p.w, inputs)
	if err != nil {
		return err
	}
	for _, id := range p.outs {
		scale := 0.0
		for _, v := range ref[id].Data() {
			a := float64(v)
			if a < 0 {
				a = -a
			}
			if a > scale {
				scale = a
			}
		}
		if scale == 0 {
			scale = 1
		}
		d, err := tensor.MaxAbsDiff(got[id], ref[id])
		if err != nil {
			return fmt.Errorf("cimmlc: Verify: output %d: %w", id, err)
		}
		if d > floatTol*scale {
			return fmt.Errorf("cimmlc: Verify: output %d diverges from float reference by %g (tol %g of max magnitude %g)", id, d, floatTol, scale)
		}
	}
	return nil
}

// partitionStats derives the serving-visible summary from a partitioned
// compilation result.
func partitionStats(res *Result) *PartitionStats {
	info := res.Partition
	st := &PartitionStats{
		Subgraphs:      len(info.Plan.Subs),
		CIMNodes:       info.Plan.CIMNodeCount(),
		HostNodes:      info.Plan.HostNodeCount(),
		Transfers:      len(info.Plan.Transfers),
		TransferElems:  info.Plan.TransferElems(),
		CIMCycles:      info.CIMCycles,
		HostCycles:     info.HostCycles,
		TransferCycles: info.TransferCycles,
	}
	return st
}
